"""Pyjama's execution model: teams, regions, worksharing, reductions.

Scheduling model
----------------
Every worksharing construct first carves iterations into chunks
(:mod:`repro.pyjama.schedule`) and then assigns chunks to ``num_threads``
*lanes*; a lane's chunks are chained by dependences, so exactly
``num_threads`` chunks can be in flight — the team size is honoured on
every backend, including the virtual-time one.

* ``static`` lanes come from the schedule itself (pre-partitioned);
* ``dynamic``/``guided`` lanes are computed by the same greedy
  rule a work queue implements — each chunk goes to the lane that frees
  up first, in chunk order — using per-chunk cost estimates
  (``cost_fn``, defaulting to 1 per iteration).  This makes the runs
  deterministic while modelling exactly the load-balancing behaviour the
  schedules are taught for.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

from repro.executor.base import Executor
from repro.executor.future import Future
from repro.pyjama.reduction import Reduction, get_reduction
from repro.pyjama.schedule import Chunk, make_chunks

__all__ = ["Pyjama", "TeamContext", "RegionResult"]

_region_ids = itertools.count(1)


@dataclass
class RegionResult:
    """Outcome of a parallel region."""

    returns: list[Any]
    reductions: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.reductions[key]


class _RegionState:
    """Shared state of one region's team (single claims, contributions)."""

    def __init__(self, region_id: int, num_threads: int) -> None:
        self.region_id = region_id
        self.num_threads = num_threads
        self.lock = threading.Lock()
        self.single_claims: dict[str, int] = {}
        self.contributions: dict[str, list[tuple[int, Any]]] = {}
        self.reducers: dict[str, Reduction] = {}
        self.counters: dict[str, int] = {}


class TeamContext:
    """Handed to each team member's body: its view of the region."""

    def __init__(self, omp: "Pyjama", state: _RegionState, tid: int) -> None:
        self._omp = omp
        self._state = state
        self.tid = tid
        self.num_threads = state.num_threads

    # -- synchronisation ---------------------------------------------------

    def barrier(self, label: str = "") -> None:
        """Team barrier; all members must call it the same number of times."""
        self._omp.executor.barrier(
            f"region{self._state.region_id}:{label}", parties=self.num_threads
        )

    def critical(self, name: str = "default"):
        """Named critical section (region-scoped name)."""
        return self._omp.executor.critical(f"region{self._state.region_id}:{name}")

    def master(self) -> bool:
        """OpenMP ``master``: true only on thread 0."""
        return self.tid == 0

    def single(self, key: str = "single") -> bool:
        """OpenMP ``single``: true for exactly one member per key."""
        with self._state.lock:
            claimed = self._state.single_claims.setdefault(key, self.tid)
        return claimed == self.tid

    # -- worksharing inside a region -------------------------------------------

    def for_range(self, n: int, schedule: str = "static", chunk_size: int | None = None) -> Iterator[int]:
        """Iterations of a region-internal ``for`` assigned to this member.

        ``static`` is pre-partitioned (deterministic).  ``dynamic`` pulls
        chunks from a shared counter — genuinely dynamic on the thread
        backend; on the sequential backends members claim chunks in
        arrival order (values are identical either way; only who-ran-what
        differs).
        """
        if schedule == "static":
            for chunk in make_chunks(n, "static", chunk_size, self.num_threads):
                if chunk.lane == self.tid:
                    yield from chunk.iterations()
            return
        chunks = make_chunks(n, schedule, chunk_size, self.num_threads)
        counter_key = f"for:{schedule}:{n}:{chunk_size}"
        while True:
            with self._state.lock:
                i = self._state.counters.get(counter_key, 0)
                if i >= len(chunks):
                    return
                self._state.counters[counter_key] = i + 1
            yield from chunks[i].iterations()

    # -- explicit tasks (OpenMP 3.0-style ``task`` directive) ---------------------------

    def task(self, fn: Callable[..., Any], *args: Any, cost: float | None = None) -> Future:
        """``#omp task``: spawn ``fn(*args)`` as a child task of this member.

        Returns its future; ``taskwait`` is ``future.result()`` (or wait
        on several).  This is the irregular-parallelism escape hatch the
        worksharing constructs don't cover (linked lists, recursion).
        """
        return self._omp.executor.submit(
            fn, *args, cost=cost, name=f"omp-task-r{self._state.region_id}-t{self.tid}"
        )

    def taskwait(self, futures: "Future | list[Future]") -> Any:
        """``#omp taskwait``: block until the given task(s) finish."""
        if isinstance(futures, Future):
            return futures.result()
        return [f.result() for f in futures]

    # -- reductions -------------------------------------------------------------------

    def contribute(self, key: str, value: Any, reduction: "str | Reduction" = "+") -> None:
        """Add this member's contribution to a region-level reduction."""
        red = get_reduction(reduction)
        with self._state.lock:
            existing = self._state.reducers.setdefault(key, red)
            if existing.name != red.name:
                raise ValueError(
                    f"reduction key {key!r} used with {red.name!r} after {existing.name!r}"
                )
            self._state.contributions.setdefault(key, []).append((self.tid, value))

    # -- work accounting ---------------------------------------------------------------

    def compute(self, cost: float) -> None:
        """Charge virtual work to this member (see executor cost model)."""
        self._omp.executor.compute(cost)

    def __repr__(self) -> str:
        return f"TeamContext(tid={self.tid}/{self.num_threads})"


class Pyjama:
    """The directive front end; one instance per executor."""

    def __init__(self, executor: Executor, num_threads: int | None = None, edt: Any | None = None) -> None:
        self.executor = executor
        self.default_num_threads = num_threads or executor.cores
        self.edt = edt
        #: observability: regions and worksharing emit on the executor's
        #: recorder so directive-level events align with task spans.
        self.trace = executor.trace

    def _resolve_threads(self, num_threads: int | None) -> int:
        t = self.default_num_threads if num_threads is None else num_threads
        if t < 1:
            raise ValueError(f"num_threads must be >= 1, got {t}")
        return t

    # -- parallel region --------------------------------------------------------

    def parallel(self, body: Callable[[TeamContext], Any], num_threads: int | None = None) -> RegionResult:
        """``#omp parallel``: run ``body(ctx)`` on a team; join at the end.

        Returns per-member return values (tid order) and any region
        reductions contributed via :meth:`TeamContext.contribute`.
        """
        t = self._resolve_threads(num_threads)
        state = _RegionState(next(_region_ids), t)

        def member(tid: int) -> Any:
            return body(TeamContext(self, state, tid))

        if self.trace.enabled:
            self.trace.event("region", f"region{state.region_id}", phase="B", threads=t)
            self.trace.count("pyjama.regions")
        futures = [
            self.executor.submit(member, tid, name=f"omp-r{state.region_id}-t{tid}")
            for tid in range(t)
        ]
        try:
            returns = [f.result() for f in futures]
        finally:
            if self.trace.enabled:
                self.trace.event("region", f"region{state.region_id}", phase="E")
        reductions = {}
        for key, pairs in state.contributions.items():
            red = state.reducers[key]
            ordered = [v for _tid, v in sorted(pairs, key=lambda p: p[0])]
            reductions[key] = red.fold(ordered)
        return RegionResult(returns=returns, reductions=reductions)

    # -- combined parallel for ------------------------------------------------------

    def parallel_for(
        self,
        items: Sequence[Any],
        body: Callable[[Any], Any],
        *,
        schedule: str = "static",
        chunk_size: int | None = None,
        num_threads: int | None = None,
        reduction: "str | Reduction | None" = None,
        cost_fn: Callable[[Any], float] | None = None,
        name: str = "omp-for",
    ) -> Any:
        """``#omp parallel for``: ``body(item)`` over ``items``.

        With ``reduction``, per-chunk partials are combined in iteration
        order (so non-commutative reductions like ``"list"`` preserve
        loop order); without, the per-iteration results are returned as a
        list in iteration order.
        """
        t = self._resolve_threads(num_threads)
        n = len(items)
        red = get_reduction(reduction)
        chunks = make_chunks(n, schedule, chunk_size, t)
        lanes = _assign_lanes(chunks, t, items, cost_fn)
        if self.trace.enabled:
            self.trace.event(
                "worksharing", name, schedule=schedule, iterations=n, chunks=len(chunks), threads=t
            )
            self.trace.count("pyjama.parallel_for")
            self.trace.count("pyjama.chunks", len(chunks))

        def run_chunk(chunk: Chunk) -> Any:
            if red is not None:
                acc = red.identity()
                for i in chunk.iterations():
                    acc = red.combine(acc, body(items[i]))
                return acc
            return [body(items[i]) for i in chunk.iterations()]

        lane_tail: list[Future | None] = [None] * t
        futures: list[Future] = []
        for chunk, lane in zip(chunks, lanes):
            cost = None
            if cost_fn is not None:
                cost = float(sum(cost_fn(items[i]) for i in chunk.iterations()))
            deps = [lane_tail[lane]] if lane_tail[lane] is not None else []
            f = self.executor.submit(
                run_chunk, chunk, cost=cost, name=f"{name}[{chunk.index}]", after=deps
            )
            lane_tail[lane] = f
            futures.append(f)

        if red is not None:
            acc = red.identity()
            for f in futures:  # chunk order == iteration order
                acc = red.combine(acc, f.result())
            return acc
        out: list[Any] = []
        for f in futures:
            out.extend(f.result())
        return out

    # -- sections ----------------------------------------------------------------------

    def sections(
        self, section_fns: Sequence[Callable[[], Any]], num_threads: int | None = None
    ) -> list[Any]:
        """``#omp sections``: each function is one section; results in order."""
        t = self._resolve_threads(num_threads)
        lane_tail: list[Future | None] = [None] * t
        futures = []
        for i, fn in enumerate(section_fns):
            lane = i % t
            deps = [lane_tail[lane]] if lane_tail[lane] is not None else []
            f = self.executor.submit(fn, name=f"omp-sec[{i}]", after=deps)
            lane_tail[lane] = f
            futures.append(f)
        return [f.result() for f in futures]

    # -- GUI-aware directives (the Pyjama speciality) -------------------------------------

    def on_gui(self, fn: Callable[..., Any], *args: Any) -> None:
        """``//#omp gui``: run ``fn`` on the EDT (asynchronously).

        Pyjama's headline feature: safe widget updates from parallel code.
        """
        if self.edt is None:
            raise RuntimeError("Pyjama was constructed without an EDT; pass edt=...")
        self.edt.invoke_later(fn, *args)

    def free_gui(self, fn: Callable[..., Any], *args: Any, cost: float | None = None) -> Future:
        """``//#omp freeguithread``: push a long-running handler body off
        the EDT onto the task pool, returning its future."""
        return self.executor.submit(fn, *args, cost=cost, name="freeguithread")

    def __repr__(self) -> str:
        return f"Pyjama(threads={self.default_num_threads}, executor={self.executor!r})"


def _assign_lanes(
    chunks: Sequence[Chunk],
    num_threads: int,
    items: Sequence[Any],
    cost_fn: Callable[[Any], float] | None,
) -> list[int]:
    """Lane (team-thread) for each chunk.

    Static chunks carry their lane; dynamic/guided chunks go to the lane
    that frees first (greedy, chunk order) — the deterministic offline
    equivalent of a shared work queue.
    """
    lanes: list[int] = []
    heap = [(0.0, lane) for lane in range(num_threads)]
    heapq.heapify(heap)
    for chunk in chunks:
        if chunk.lane is not None:
            lanes.append(chunk.lane)
            continue
        if cost_fn is not None:
            cost = float(sum(cost_fn(items[i]) for i in chunk.iterations()))
        else:
            cost = float(len(chunk))
        free_at, lane = heapq.heappop(heap)
        lanes.append(lane)
        heapq.heappush(heap, (free_at + cost, lane))
    return lanes
