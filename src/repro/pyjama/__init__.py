"""Pyjama: OpenMP-style directives for an object-oriented language.

A Python reimplementation of the PARC lab's *Pyjama* (Vikas, Giacaman &
Sinnen, Parallel Computing 2013; paper §IV-B), which brings "the OpenMP
philosophy ... into an object-oriented paradigm to allow incremental
parallelism on existing applications".  Where the Java tool uses
``//#omp`` comment directives and a source-to-source compiler, this
module exposes the same *execution model* as an explicit API:

* parallel regions with teams (:meth:`Pyjama.parallel`),
* worksharing loops with static / dynamic / guided schedules
  (:meth:`Pyjama.parallel_for`), sections, single, master,
* synchronisation: barrier, critical, atomic-style contributions,
* data clauses (private / firstprivate / lastprivate helpers — and see
  :mod:`repro.pyjama.data` for why plain ``private`` was found confusing,
  a §V-B research outcome),
* **reductions**, including the object reductions of project 5
  (collection merges, user-registered operators),
* GUI-aware directives (``gui`` / ``freeguithread``) for responsiveness.

Like Parallel Task, Pyjama runs on any :class:`repro.executor.Executor`.
"""

from repro.pyjama.core import Pyjama, RegionResult, TeamContext
from repro.pyjama.data import firstprivate, lastprivate, private
from repro.pyjama.reduction import (
    Reduction,
    get_reduction,
    list_reductions,
    register_reduction,
)
from repro.pyjama.schedule import Chunk, make_chunks

__all__ = [
    "Pyjama",
    "TeamContext",
    "RegionResult",
    "Reduction",
    "register_reduction",
    "get_reduction",
    "list_reductions",
    "Chunk",
    "make_chunks",
    "private",
    "firstprivate",
    "lastprivate",
]
