"""Loop schedules: how iterations are carved into chunks.

OpenMP's three classic schedules, reproduced so the schedule-ablation
bench can show their load-balance behaviour under skewed iteration
costs:

* ``static`` — iterations pre-partitioned into blocks dealt round-robin
  to team threads; zero scheduling overhead, worst balance under skew;
* ``dynamic`` — fixed-size chunks grabbed by whichever thread is free;
* ``guided`` — exponentially shrinking chunks (large first, small last),
  the classic overhead/balance compromise.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Chunk", "make_chunks"]

_SCHEDULES = ("static", "dynamic", "guided")


@dataclass(frozen=True)
class Chunk:
    """A contiguous block of loop iterations.

    ``lane`` is the team-thread a *static* schedule pins the chunk to;
    dynamic/guided chunks have ``lane=None`` (any thread may take them).
    """

    index: int
    start: int
    stop: int
    lane: int | None = None

    def __len__(self) -> int:
        return self.stop - self.start

    def iterations(self) -> range:
        return range(self.start, self.stop)


def make_chunks(
    n: int,
    schedule: str = "static",
    chunk_size: int | None = None,
    num_threads: int = 1,
) -> list[Chunk]:
    """Carve ``n`` iterations into chunks per the named schedule.

    Mirrors OpenMP defaults: static with no chunk size gives one
    near-equal block per thread; dynamic defaults to chunk size 1;
    guided's chunk size is a floor on the shrinking chunks.
    """
    if schedule not in _SCHEDULES:
        raise ValueError(f"unknown schedule {schedule!r}; expected one of {_SCHEDULES}")
    if n < 0:
        raise ValueError(f"iteration count must be >= 0, got {n}")
    if num_threads < 1:
        raise ValueError(f"num_threads must be >= 1, got {num_threads}")
    if chunk_size is not None and chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    if n == 0:
        return []

    chunks: list[Chunk] = []
    if schedule == "static":
        if chunk_size is None:
            # One block per thread, sizes differing by at most 1.
            base, extra = divmod(n, num_threads)
            start = 0
            for t in range(num_threads):
                size = base + (1 if t < extra else 0)
                if size == 0:
                    continue
                chunks.append(Chunk(index=len(chunks), start=start, stop=start + size, lane=t))
                start += size
        else:
            # Blocks of chunk_size dealt round-robin (static,chunk).
            start = 0
            i = 0
            while start < n:
                stop = min(start + chunk_size, n)
                chunks.append(Chunk(index=i, start=start, stop=stop, lane=i % num_threads))
                start = stop
                i += 1
    elif schedule == "dynamic":
        size = chunk_size or 1
        start = 0
        i = 0
        while start < n:
            stop = min(start + size, n)
            chunks.append(Chunk(index=i, start=start, stop=stop, lane=None))
            start = stop
            i += 1
    else:  # guided
        floor = chunk_size or 1
        remaining = n
        start = 0
        i = 0
        while remaining > 0:
            size = max(floor, remaining // (2 * num_threads))
            size = min(size, remaining)
            chunks.append(Chunk(index=i, start=start, stop=start + size, lane=None))
            start += size
            remaining -= size
            i += 1
    return chunks
