"""The simulator core: virtual clock, event heap, generator processes.

Determinism contract: given the same spawn order and the same yields, a
simulation produces the identical schedule every run.  Ties at equal
virtual time are broken by a monotonically increasing sequence number
(strict FIFO), never by object identity or hash order.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable

from repro.util.stopwatch import ManualClock

__all__ = ["SimEvent", "Process", "Simulator", "SimCancelled"]


class SimCancelled(Exception):
    """Raised inside a process that has been cancelled."""


class SimEvent:
    """A one-shot event processes can wait on.

    An event is *fired* at most once, with an optional value.  Firing with
    an exception instance (``fail``) propagates that exception into every
    waiter.  Waiting on an already-fired event resumes the waiter on the
    next simulation step (never synchronously), which keeps resumption
    order independent of fire/wait interleaving.
    """

    __slots__ = ("sim", "name", "_fired", "_value", "_exception", "_waiters")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._fired = False
        self._value: Any = None
        self._exception: BaseException | None = None
        self._waiters: list[Process] = []

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def value(self) -> Any:
        if not self._fired:
            raise RuntimeError(f"event {self.name!r} has not fired")
        if self._exception is not None:
            raise self._exception
        return self._value

    def fire(self, value: Any = None) -> None:
        self._resolve(value, None)

    def fail(self, exception: BaseException) -> None:
        self._resolve(None, exception)

    def _resolve(self, value: Any, exception: BaseException | None) -> None:
        if self._fired:
            raise RuntimeError(f"event {self.name!r} fired twice")
        self._fired = True
        self._value = value
        self._exception = exception
        waiters, self._waiters = self._waiters, []
        if waiters:
            # Fan-out fast path: the send/throw pair is the same for every
            # waiter, so compute it once instead of re-deriving it per
            # waiter through the ``value`` property (which re-raises the
            # stored exception each time).  Schedule order is unchanged.
            at = self.sim._at
            now = self.sim.now
            if exception is None:
                for proc in waiters:
                    at(now, proc, value)
            else:
                for proc in waiters:
                    at(now, proc, None, exception)

    def _add_waiter(self, proc: "Process") -> None:
        if self._fired:
            self.sim._schedule_resume(proc, self)
        else:
            self._waiters.append(proc)

    def _discard_waiter(self, proc: "Process") -> None:
        try:
            self._waiters.remove(proc)
        except ValueError:
            pass

    def __repr__(self) -> str:
        state = "fired" if self._fired else f"pending({len(self._waiters)} waiters)"
        return f"SimEvent({self.name!r}, {state})"


class Process:
    """A running simulation process wrapping a generator.

    The generator may yield:

    * ``float``/``int`` — sleep that many virtual seconds;
    * :class:`SimEvent` — wait until it fires (its value is sent back in);
    * another :class:`Process` — wait for it to finish;
    * ``None`` — yield the processor for one step (resume at same time).

    ``return value`` from the generator becomes ``proc.result``.
    """

    __slots__ = ("sim", "name", "gen", "done", "_alive", "_waiting_on")

    def __init__(self, sim: "Simulator", gen: Generator[Any, Any, Any], name: str = "") -> None:
        self.sim = sim
        self.name = name or getattr(gen, "__name__", "proc")
        self.gen = gen
        self.done = SimEvent(sim, name=f"{self.name}.done")
        self._alive = True
        self._waiting_on: SimEvent | None = None

    @property
    def alive(self) -> bool:
        return self._alive

    @property
    def result(self) -> Any:
        return self.done.value

    def cancel(self) -> None:
        """Cancel the process; it sees :class:`SimCancelled` at its yield."""
        if not self._alive:
            return
        if self._waiting_on is not None:
            self._waiting_on._discard_waiter(self)
            self._waiting_on = None
        self.sim._schedule_throw(self, SimCancelled())

    def _step(self, send_value: Any, throw: BaseException | None) -> None:
        if not self._alive:
            return
        self._waiting_on = None
        try:
            if throw is not None:
                yielded = self.gen.throw(throw)
            else:
                yielded = self.gen.send(send_value)
        except StopIteration as stop:
            self._finish(stop.value, None)
            return
        except SimCancelled as exc:
            self._finish(None, exc)
            return
        except Exception as exc:
            self._finish(None, exc)
            return
        self._wait_on(yielded)

    def _wait_on(self, yielded: Any) -> None:
        if yielded is None:
            self.sim._schedule_resume(self, None)
        elif isinstance(yielded, (int, float)):
            if yielded < 0:
                self._finish(None, ValueError(f"negative delay {yielded!r}"))
                return
            self.sim._at(self.sim.now + float(yielded), self, None)
        elif isinstance(yielded, SimEvent):
            self._waiting_on = yielded
            yielded._add_waiter(self)
        elif isinstance(yielded, Process):
            self._waiting_on = yielded.done
            yielded.done._add_waiter(self)
        else:
            self._finish(None, TypeError(f"process {self.name!r} yielded unsupported {yielded!r}"))

    def _finish(self, value: Any, exc: BaseException | None) -> None:
        self._alive = False
        if exc is None:
            self.done.fire(value)
        else:
            self.done.fail(exc)

    def __repr__(self) -> str:
        return f"Process({self.name!r}, alive={self._alive})"


class Simulator:
    """Event loop owning the virtual clock.

    >>> sim = Simulator()
    >>> def hello():
    ...     yield 2.5
    ...     return "done"
    >>> p = sim.spawn(hello())
    >>> sim.run()
    >>> sim.now, p.result
    (2.5, 'done')
    """

    __slots__ = ("clock", "_heap", "_seq", "_step_count")

    def __init__(self, start: float = 0.0) -> None:
        self.clock = ManualClock(start)
        self._heap: list[tuple[float, int, Process, Any, BaseException | None]] = []
        self._seq = 0
        self._step_count = 0

    @property
    def now(self) -> float:
        return self.clock.now()

    @property
    def steps(self) -> int:
        """Number of process resumptions executed so far."""
        return self._step_count

    # -- scheduling primitives -------------------------------------------

    def _at(self, t: float, proc: Process, send: Any, throw: BaseException | None = None) -> None:
        if not proc._alive:
            return  # dead processes never reach the heap
        self._seq += 1
        heapq.heappush(self._heap, (t, self._seq, proc, send, throw))

    def _schedule_resume(self, proc: Process, event: SimEvent | None) -> None:
        send = None
        throw: BaseException | None = None
        if event is not None and event.fired:
            try:
                send = event.value
            except BaseException as exc:  # the event failed
                throw = exc
        self._at(self.now, proc, send, throw)

    def _schedule_throw(self, proc: Process, exc: BaseException) -> None:
        self._at(self.now, proc, None, exc)

    # -- public API -------------------------------------------------------

    def spawn(self, gen: Generator[Any, Any, Any], name: str = "") -> Process:
        """Start a generator as a process at the current time."""
        proc = Process(self, gen, name=name)
        self._at(self.now, proc, None)
        return proc

    def event(self, name: str = "") -> SimEvent:
        return SimEvent(self, name=name)

    def timeout(self, dt: float, value: Any = None, name: str = "timeout") -> SimEvent:
        """An event that fires ``dt`` seconds from now."""
        ev = self.event(name=name)

        def fire_later() -> Generator[Any, Any, None]:
            yield dt
            ev.fire(value)

        self.spawn(fire_later(), name=f"{name}.timer")
        return ev

    def call_at(self, t: float, fn: Callable[[], Any], name: str = "call_at") -> Process:
        """Run a plain callable at absolute virtual time ``t``."""
        if t < self.now:
            raise ValueError(f"call_at in the past: now={self.now}, t={t}")

        def runner() -> Generator[Any, Any, Any]:
            yield t - self.now
            return fn()

        return self.spawn(runner(), name=name)

    def all_of(self, events: Iterable[SimEvent], name: str = "all_of") -> SimEvent:
        """An event that fires (with a list of values) once all inputs fire."""
        events = list(events)
        combined = self.event(name=name)

        def waiter() -> Generator[Any, Any, None]:
            values = []
            try:
                for ev in events:
                    values.append((yield ev))
            except Exception as exc:
                combined.fail(exc)
                return
            combined.fire(values)

        if events:
            self.spawn(waiter(), name=f"{name}.waiter")
        else:
            combined.fire([])
        return combined

    def run(self, until: float | None = None, max_steps: int | None = None) -> None:
        """Run until the heap is empty, ``until`` is reached, or step cap.

        ``until`` leaves the clock exactly at ``until`` even if no event
        lands there, so back-to-back ``run(until=...)`` calls compose.
        ``max_steps`` caps the steps of *this* invocation — sequential
        capped runs each get a fresh budget (cumulative steps stay
        visible via :attr:`steps`).
        """
        heap = self._heap
        pop = heapq.heappop
        clock = self.clock
        advance = clock.advance_to
        now = clock.now()
        steps = 0
        try:
            if until is None and max_steps is None:
                # Hottest form (run to quiescence): no horizon peek, no
                # cap check; pop straight off the heap and only touch the
                # clock when virtual time actually moves — event fan-outs
                # resume thousands of processes at one timestamp.
                while heap:
                    t, _seq, proc, send, throw = pop(heap)
                    if not proc._alive:
                        continue
                    if t > now:
                        advance(t)
                        now = t
                    steps += 1
                    proc._step(send, throw)
            else:
                while heap:
                    if until is not None and heap[0][0] > until:
                        break
                    t, _seq, proc, send, throw = pop(heap)
                    if not proc._alive:
                        continue
                    if t > now:
                        advance(t)
                        now = t
                    steps += 1
                    if max_steps is not None and steps > max_steps:
                        raise RuntimeError(
                            f"simulation exceeded {max_steps} steps (livelock?)"
                        )
                    proc._step(send, throw)
        finally:
            self._step_count += steps
        if until is not None and clock.now() < until:
            advance(until)

    def __repr__(self) -> str:
        return f"Simulator(now={self.now}, pending={len(self._heap)})"
