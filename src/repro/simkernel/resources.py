"""Resources, locks, stores and channels for simulation processes.

These model contention in virtual time: a :class:`Resource` with capacity
``c`` is the simulator-side analogue of ``c`` cores or ``c`` connection
slots; a :class:`SimLock` is a capacity-1 resource used to model critical
sections; :class:`Store`/:class:`Channel` model producer/consumer queues.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator

from repro.simkernel.core import SimEvent, Simulator

__all__ = ["Resource", "SimLock", "Store", "Channel"]


class Resource:
    """Counting resource with FIFO grant order.

    Usage from a process::

        grant = yield res.acquire()
        ...critical work...
        res.release()
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "resource") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._queue: Deque[SimEvent] = deque()
        # observability
        self.total_acquisitions = 0
        self.total_wait_time = 0.0
        self.peak_queue_len = 0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def acquire(self) -> SimEvent:
        """Return an event that fires when a slot is granted."""
        ev = self.sim.event(name=f"{self.name}.grant")
        requested_at = self.sim.now

        # Wrap firing so we can record wait time at grant.
        def grant() -> None:
            self.total_acquisitions += 1
            self.total_wait_time += self.sim.now - requested_at
            ev.fire(self)

        if self._in_use < self.capacity and not self._queue:
            self._in_use += 1
            grant()
        else:
            granter = self.sim.event(name=f"{self.name}.queued")
            self._queue.append(granter)
            self.peak_queue_len = max(self.peak_queue_len, len(self._queue))

            def waiter() -> Generator[Any, Any, None]:
                yield granter
                grant()

            self.sim.spawn(waiter(), name=f"{self.name}.waiter")
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise RuntimeError(f"release of {self.name!r} with nothing acquired")
        if self._queue:
            # Hand the slot straight to the next waiter (count stays).
            self._queue.popleft().fire(None)
        else:
            self._in_use -= 1

    def __repr__(self) -> str:
        return f"Resource({self.name!r}, {self._in_use}/{self.capacity}, queued={len(self._queue)})"


class SimLock(Resource):
    """Capacity-1 resource; models a mutex / critical section."""

    def __init__(self, sim: Simulator, name: str = "lock") -> None:
        super().__init__(sim, capacity=1, name=name)

    @property
    def locked(self) -> bool:
        return self.in_use > 0


class Store:
    """Unbounded FIFO item store (producer/consumer buffer)."""

    def __init__(self, sim: Simulator, name: str = "store") -> None:
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[SimEvent] = deque()
        self.total_put = 0
        self.total_got = 0

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        self.total_put += 1
        if self._getters:
            self.total_got += 1
            self._getters.popleft().fire(item)
        else:
            self._items.append(item)

    def get(self) -> SimEvent:
        """Event firing with the next item (immediately if available)."""
        ev = self.sim.event(name=f"{self.name}.get")
        if self._items:
            self.total_got += 1
            ev.fire(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev


class Channel:
    """Bounded rendezvous-ish channel: ``put`` blocks when full.

    Used to model bounded work queues (e.g. the web-fetch connection
    feeder in project 10).
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "channel") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[SimEvent] = deque()
        self._putters: Deque[tuple[SimEvent, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> SimEvent:
        """Event firing once the item has been accepted."""
        ev = self.sim.event(name=f"{self.name}.put")
        if self._getters:
            self._getters.popleft().fire(item)
            ev.fire(None)
        elif len(self._items) < self.capacity:
            self._items.append(item)
            ev.fire(None)
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> SimEvent:
        """Event firing with the next item."""
        ev = self.sim.event(name=f"{self.name}.get")
        if self._items:
            item = self._items.popleft()
            if self._putters:
                pev, pitem = self._putters.popleft()
                self._items.append(pitem)
                pev.fire(None)
            ev.fire(item)
        elif self._putters:
            pev, pitem = self._putters.popleft()
            pev.fire(None)
            ev.fire(pitem)
        else:
            self._getters.append(ev)
        return ev
