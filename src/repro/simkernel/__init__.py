"""Deterministic discrete-event simulation kernel.

A minimal, SimPy-style engine: processes are generators that yield
*waitables* (delays, events, resource acquisitions); the simulator advances
a virtual clock and resumes processes in a deterministic order (time, then
FIFO sequence number).  Everything that needs virtual time in this library
— the simulated machine executor, the GUI responsiveness probe, the fake
network — runs on this kernel.

Why a simulator at all: the paper's speedup demonstrations ran on real
64/16/8-core PARC machines.  Under CPython's GIL (and a single-core
container) real threads cannot reproduce those curves, so we execute the
same task graphs in virtual time instead (see DESIGN.md §2).
"""

from repro.simkernel.core import Process, SimCancelled, SimEvent, Simulator
from repro.simkernel.resources import Channel, Resource, SimLock, Store

__all__ = [
    "Simulator",
    "Process",
    "SimEvent",
    "SimCancelled",
    "Resource",
    "SimLock",
    "Store",
    "Channel",
]
