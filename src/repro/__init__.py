"""repro: the PARC teaching stack from "EA: Research-infused teaching of
parallel programming concepts for undergraduate Software Engineering
students" (Giacaman & Sinnen, IPDPSW 2014).

A complete, adoptable Python implementation of everything the paper's
course runs on:

* **Parallel Task** (:mod:`repro.ptask`) — task parallelism with
  dependences, multi-tasks, GUI-aware notification, task-safe classes;
* **Pyjama** (:mod:`repro.pyjama`) — OpenMP-style regions, worksharing
  schedules, object reductions, GUI directives;
* **execution backends** (:mod:`repro.executor`) — the same programs run
  inline, on a work-stealing thread pool, or in virtual time on a
  simulated PARC machine (:mod:`repro.machine`, :mod:`repro.simkernel`);
* **substrates** — concurrent collections (:mod:`repro.concurrentlib`),
  a memory-model explorer with a race detector (:mod:`repro.memmodel`),
  an EDT/GUI layer (:mod:`repro.gui`), a mini subversion
  (:mod:`repro.vcs`);
* **the ten student projects** (:mod:`repro.apps`),
* **the course machinery itself** (:mod:`repro.course`): nexus model,
  schedule, doodle-poll allocation, assessment, Likert survey, and a
  full semester simulation; and
* **observability** (:mod:`repro.obs`) — tracing and metrics for every
  backend (``python -m repro trace <experiment>`` writes a Chrome
  trace_event timeline).

Quickstart::

    from repro.executor import create
    from repro.ptask import ParallelTaskRuntime

    ex = create("sim", cores=64)
    rt = ParallelTaskRuntime(ex)
    futures = [rt.spawn(lambda i=i: i * i, cost=1.0) for i in range(64)]
    print([f.result() for f in futures][:5], ex.elapsed())
"""

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "apps",
    "concurrentlib",
    "course",
    "executor",
    "gui",
    "machine",
    "memmodel",
    "obs",
    "ptask",
    "pyjama",
    "simkernel",
    "util",
    "vcs",
]
