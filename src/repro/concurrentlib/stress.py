"""Stress harness for the real collection classes.

The contention *model* (:mod:`repro.concurrentlib.model`) produces the
performance shapes; this module closes the loop on correctness: the same
kind of mixed workload is run against the actual classes on real threads
and the final state is checked against exactly-computable invariants
(sums, element multisets, uniqueness of winners).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable

from repro.util.rng import spawn_seeds

__all__ = ["StressOutcome", "stress_map", "stress_set", "stress_queue", "stress_list"]


@dataclass(frozen=True)
class StressOutcome:
    """What the workload did and what the structure ended up holding."""

    threads: int
    ops_per_thread: int
    expected: Any
    observed: Any

    @property
    def consistent(self) -> bool:
        return self.expected == self.observed


def _run_threads(n: int, body: Callable[[int, int], None], seed: int) -> None:
    seeds = list(spawn_seeds(seed, n, "stress"))
    threads = [threading.Thread(target=body, args=(i, seeds[i])) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


def stress_map(map_obj: Any, threads: int = 4, ops_per_thread: int = 500, seed: int = 0) -> StressOutcome:
    """Concurrent ``compute`` increments over a shared key space.

    Invariant: the sum over all keys equals the total increments — any
    lost update breaks it.
    """
    import numpy as np

    key_space = 16

    def body(_tid: int, tseed: int) -> None:
        rng = np.random.default_rng(tseed)
        for _ in range(ops_per_thread):
            key = int(rng.integers(0, key_space))
            map_obj.compute(key, lambda _k, v: (v or 0) + 1)

    _run_threads(threads, body, seed)
    return StressOutcome(
        threads=threads,
        ops_per_thread=ops_per_thread,
        expected=threads * ops_per_thread,
        observed=sum(map_obj.snapshot().values()),
    )


def stress_set(set_obj: Any, threads: int = 4, elements: int = 300, seed: int = 0) -> StressOutcome:
    """All threads race to add the same elements.

    Invariants: each element ends up present exactly once, and exactly
    one thread's ``add`` returned True per element.
    """
    wins: list[int] = []
    wins_lock = threading.Lock()

    def body(_tid: int, _tseed: int) -> None:
        local = [e for e in range(elements) if set_obj.add(e)]
        with wins_lock:
            wins.extend(local)

    _run_threads(threads, body, seed)
    return StressOutcome(
        threads=threads,
        ops_per_thread=elements,
        expected=(sorted(range(elements)), set(range(elements))),
        observed=(sorted(wins), set_obj.snapshot()),
    )


def stress_queue(queue_obj: Any, producers: int = 3, per_producer: int = 400, seed: int = 0) -> StressOutcome:
    """Concurrent producers, then a full drain.

    Invariants: nothing lost, nothing duplicated, and per-producer FIFO
    order preserved.
    """
    def body(tid: int, _tseed: int) -> None:
        for i in range(per_producer):
            queue_obj.offer((tid, i))

    _run_threads(producers, body, seed)
    drained = queue_obj.drain()
    per_producer_ordered = all(
        [i for p, i in drained if p == tid] == list(range(per_producer))
        for tid in range(producers)
    )
    return StressOutcome(
        threads=producers,
        ops_per_thread=per_producer,
        expected=(producers * per_producer, True),
        observed=(len(set(drained)), per_producer_ordered),
    )


def stress_list(list_obj: Any, threads: int = 4, per_thread: int = 200, seed: int = 0) -> StressOutcome:
    """Concurrent appends; invariant: the multiset of items is exact."""

    def body(tid: int, _tseed: int) -> None:
        for i in range(per_thread):
            list_obj.append((tid, i))

    _run_threads(threads, body, seed)
    observed = sorted(list_obj.snapshot())
    expected = sorted((t, i) for t in range(threads) for i in range(per_thread))
    return StressOutcome(
        threads=threads, ops_per_thread=per_thread, expected=expected, observed=observed
    )
