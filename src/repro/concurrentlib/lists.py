"""Lists: synchronized (locked) vs copy-on-write.

``CopyOnWriteArrayList`` trades write cost (full copy per mutation) for
lock-free, snapshot-consistent reads — the right half of project 9's
read-mostly-vs-write-heavy comparison.
"""

from __future__ import annotations

import threading
from typing import Generic, Iterable, Iterator, TypeVar

__all__ = ["SynchronizedList", "CopyOnWriteArrayList"]

T = TypeVar("T")


class SynchronizedList(Generic[T]):
    """A list guarded by one mutex; iteration copies under the lock."""

    def __init__(self, items: Iterable[T] = ()) -> None:
        self._data = list(items)
        self._lock = threading.Lock()

    def append(self, item: T) -> None:
        with self._lock:
            self._data.append(item)

    def remove(self, item: T) -> bool:
        with self._lock:
            try:
                self._data.remove(item)
                return True
            except ValueError:
                return False

    def __getitem__(self, i: int) -> T:
        with self._lock:
            return self._data[i]

    def __setitem__(self, i: int, value: T) -> None:
        with self._lock:
            self._data[i] = value

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, item: T) -> bool:
        with self._lock:
            return item in self._data

    def __iter__(self) -> Iterator[T]:
        with self._lock:
            return iter(list(self._data))

    def snapshot(self) -> list[T]:
        with self._lock:
            return list(self._data)


class CopyOnWriteArrayList(Generic[T]):
    """Immutable-snapshot list: mutations replace the whole backing array.

    Reads (indexing, iteration, membership) touch a single immutable
    tuple reference and take no lock at all; iteration is over the
    snapshot current at iteration start, so concurrent mutation never
    invalidates an iterator — the CoW guarantee the tests pin down.
    """

    def __init__(self, items: Iterable[T] = ()) -> None:
        self._array: tuple[T, ...] = tuple(items)
        self._write_lock = threading.Lock()
        self._copies = 0

    def append(self, item: T) -> None:
        with self._write_lock:
            self._array = self._array + (item,)
            self._copies += 1

    def remove(self, item: T) -> bool:
        with self._write_lock:
            arr = self._array
            for i, x in enumerate(arr):
                if x == item:
                    self._array = arr[:i] + arr[i + 1 :]
                    self._copies += 1
                    return True
            return False

    def __getitem__(self, i: int) -> T:
        return self._array[i]  # lock-free

    def __len__(self) -> int:
        return len(self._array)  # lock-free

    def __contains__(self, item: T) -> bool:
        return item in self._array  # lock-free

    def __iter__(self) -> Iterator[T]:
        return iter(self._array)  # snapshot semantics

    def snapshot(self) -> list[T]:
        return list(self._array)

    @property
    def copies_made(self) -> int:
        """Number of full-array copies so far — the CoW cost signal."""
        return self._copies
