"""Locks: unfair, fair (ticket) and read–write.

Project 9 explicitly lists "different locking mechanisms, such as
``synchronized``, atomic variables, locks (fair/unfair)" among the things
to compare.  The fair lock here is a ticket lock: strict FIFO grant
order, observable via the acquisition log the tests assert on.
"""

from __future__ import annotations

import threading
from typing import Any

__all__ = ["UnfairLock", "FairLock", "ReadWriteLock"]


class UnfairLock:
    """A plain mutex (barging permitted), with acquisition counting."""

    def __init__(self, name: str = "unfair") -> None:
        self.name = name
        self._lock = threading.Lock()
        self._acquisitions = 0

    def acquire(self, timeout: float | None = None) -> bool:
        ok = self._lock.acquire(timeout=timeout if timeout is not None else -1)
        if ok:
            self._acquisitions += 1
        return ok

    def release(self) -> None:
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    @property
    def acquisitions(self) -> int:
        return self._acquisitions

    def __enter__(self) -> "UnfairLock":
        self.acquire()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.release()


class FairLock:
    """Ticket lock: grants strictly in request order (FIFO).

    Each acquirer takes a ticket; the lock serves tickets in sequence.
    ``grant_log`` records the ticket order actually served, which equals
    the request order by construction — the fairness property under test.
    """

    def __init__(self, name: str = "fair") -> None:
        self.name = name
        self._cond = threading.Condition()
        self._next_ticket = 0
        self._now_serving = 0
        self.grant_log: list[int] = []

    def acquire(self, timeout: float | None = None) -> bool:
        """Take a ticket and wait until it is served (strict FIFO)."""
        with self._cond:
            my_ticket = self._next_ticket
            self._next_ticket += 1
            ok = self._cond.wait_for(lambda: self._now_serving == my_ticket, timeout=timeout)
            if not ok:
                # Abandon the ticket: mark it served so the queue advances.
                # (Simplification: only safe if nothing between now_serving
                # and my_ticket is still waiting; sufficient for tests.)
                if self._now_serving == my_ticket:
                    self._now_serving += 1
                    self._cond.notify_all()
                return False
            self.grant_log.append(my_ticket)
            return True

    def release(self) -> None:
        with self._cond:
            self._now_serving += 1
            self._cond.notify_all()

    def __enter__(self) -> "FairLock":
        self.acquire()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.release()


class ReadWriteLock:
    """Writer-preferring read–write lock.

    Many readers may hold the lock together; writers are exclusive.  A
    waiting writer blocks *new* readers (writer preference), preventing
    writer starvation in read-mostly workloads — the regime project 9's
    read/write-mix sweep explores.
    """

    def __init__(self, name: str = "rw") -> None:
        self.name = name
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0
        self.max_concurrent_readers = 0

    def acquire_read(self, timeout: float | None = None) -> bool:
        """Shared acquire; blocks while a writer holds or waits."""
        with self._cond:
            ok = self._cond.wait_for(
                lambda: not self._writer and self._writers_waiting == 0, timeout=timeout
            )
            if not ok:
                return False
            self._readers += 1
            self.max_concurrent_readers = max(self.max_concurrent_readers, self._readers)
            return True

    def release_read(self) -> None:
        with self._cond:
            if self._readers <= 0:
                raise RuntimeError("release_read without a read hold")
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self, timeout: float | None = None) -> bool:
        """Exclusive acquire; waits out readers and the current writer."""
        with self._cond:
            self._writers_waiting += 1
            try:
                ok = self._cond.wait_for(
                    lambda: not self._writer and self._readers == 0, timeout=timeout
                )
                if not ok:
                    return False
                self._writer = True
                return True
            finally:
                self._writers_waiting -= 1

    def release_write(self) -> None:
        with self._cond:
            if not self._writer:
                raise RuntimeError("release_write without the write hold")
            self._writer = False
            self._cond.notify_all()

    class _ReadGuard:
        def __init__(self, lock: "ReadWriteLock") -> None:
            self._lock = lock

        def __enter__(self) -> None:
            self._lock.acquire_read()

        def __exit__(self, *exc: Any) -> None:
            self._lock.release_read()

    class _WriteGuard:
        def __init__(self, lock: "ReadWriteLock") -> None:
            self._lock = lock

        def __enter__(self) -> None:
            self._lock.acquire_write()

        def __exit__(self, *exc: Any) -> None:
            self._lock.release_write()

    def read(self) -> "_ReadGuard":
        return self._ReadGuard(self)

    def write(self) -> "_WriteGuard":
        return self._WriteGuard(self)
