"""Concurrent collections and synchronisation primitives.

The Python analogue of ``java.util.concurrent``, built for project 9
("Parallel use of collections"): the students compared thread-safe
collections against standard collections guarded by locks, across
synchronisation mechanisms (``synchronized``, atomic variables,
fair/unfair locks) and collection kinds (lists, deques, sets, maps).

Two layers:

* the real classes (this package) — exercised under genuine preemption
  by the thread-backend tests;
* a contention *model* (:mod:`repro.concurrentlib.model`) that maps each
  synchronisation flavour to critical-section structure on the simulated
  executor, which is what the project-9 bench sweeps (see DESIGN.md §2
  for why performance shapes come from virtual time).
"""

from repro.concurrentlib.atomics import AtomicBoolean, AtomicInteger, AtomicReference
from repro.concurrentlib.locks import FairLock, ReadWriteLock, UnfairLock
from repro.concurrentlib.maps import StripedHashMap, SynchronizedDict
from repro.concurrentlib.queues import ArrayBlockingQueue, ConcurrentLinkedQueue
from repro.concurrentlib.lists import CopyOnWriteArrayList, SynchronizedList
from repro.concurrentlib.sets import ConcurrentHashSet, SynchronizedSet
from repro.concurrentlib.model import MODELS, CollectionModel, run_collection_workload

__all__ = [
    "MODELS",
    "CollectionModel",
    "run_collection_workload",
    "AtomicInteger",
    "AtomicBoolean",
    "AtomicReference",
    "FairLock",
    "UnfairLock",
    "ReadWriteLock",
    "ArrayBlockingQueue",
    "ConcurrentLinkedQueue",
    "StripedHashMap",
    "SynchronizedDict",
    "CopyOnWriteArrayList",
    "SynchronizedList",
    "ConcurrentHashSet",
    "SynchronizedSet",
]
