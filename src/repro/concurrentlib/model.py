"""Contention models: how each synchronisation flavour costs in virtual time.

Project 9's deliverable was a performance comparison of collection +
synchronisation combinations under read/write mixes.  Real-thread timing
cannot show that here (GIL, one core — DESIGN.md §2), so this module maps
each flavour onto the simulated executor's primitives:

* which *named critical section* (if any) a read or write takes —
  the simulator serialises same-named sections, so lock granularity
  directly shapes the virtual makespan;
* the base cost of each operation, plus any structural extra (e.g.
  copy-on-write's size-proportional write).

The mapping is the textbook structure of each design, so the *shapes*
(who wins under which mix) are faithful even though the constants are
chosen, not measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.executor.base import Executor
from repro.util.rng import derive

__all__ = ["CollectionModel", "MODELS", "run_collection_workload", "WorkloadResult"]


@dataclass(frozen=True)
class CollectionModel:
    """Lock structure and cost model of one collection/sync flavour."""

    name: str
    #: lock name for a read of ``key`` (None = lock-free read)
    read_lock: Callable[[int], str | None]
    #: lock name for a write of ``key`` (None = lock-free write)
    write_lock: Callable[[int], str | None]
    read_cost: float = 1e-5
    write_cost: float = 2e-5
    #: extra write cost per element currently in the collection (CoW copy)
    write_cost_per_element: float = 0.0
    description: str = ""


def _global(_key: int) -> str:
    return "global"


def _none(_key: int) -> None:
    return None


def _striped(stripes: int) -> Callable[[int], str]:
    def lock(key: int) -> str:
        return f"stripe{key % stripes}"

    return lock


MODELS: dict[str, CollectionModel] = {
    "synchronized": CollectionModel(
        name="synchronized",
        read_lock=_global,
        write_lock=_global,
        description="standard collection + one global lock (synchronized wrapper)",
    ),
    "striped-4": CollectionModel(
        name="striped-4",
        read_lock=_striped(4),
        write_lock=_striped(4),
        description="ConcurrentHashMap-style, 4 stripes",
    ),
    "striped-16": CollectionModel(
        name="striped-16",
        read_lock=_striped(16),
        write_lock=_striped(16),
        description="ConcurrentHashMap-style, 16 stripes",
    ),
    "rwlock": CollectionModel(
        name="rwlock",
        read_lock=_none,  # readers share: modelled as unserialised
        write_lock=_global,
        description="read-write lock: shared reads, exclusive writes",
    ),
    "cow": CollectionModel(
        name="cow",
        read_lock=_none,
        write_lock=_global,
        write_cost_per_element=2e-7,
        description="copy-on-write: lock-free reads, full-copy writes",
    ),
    "atomic": CollectionModel(
        name="atomic",
        read_lock=_none,
        write_lock=_striped(64),
        description="per-cell atomic variables (fine-grained CAS cells)",
    ),
}


@dataclass(frozen=True)
class WorkloadResult:
    model: str
    tasks: int
    ops_per_task: int
    read_fraction: float
    reads: int
    writes: int


def run_collection_workload(
    executor: Executor,
    model: CollectionModel,
    *,
    tasks: int = 8,
    ops_per_task: int = 200,
    read_fraction: float = 0.9,
    key_space: int = 64,
    collection_size: int = 1000,
    seed: int = 0,
) -> WorkloadResult:
    """Spawn ``tasks`` tasks each doing a random read/write mix.

    Deterministic per (seed, task index).  On a simulated executor the
    returned makespan (``executor.elapsed()``) is the figure of merit; on
    other executors this doubles as a stress test.
    """
    import threading

    if not 0.0 <= read_fraction <= 1.0:
        raise ValueError(f"read_fraction must be in [0,1], got {read_fraction}")
    counters = {"reads": 0, "writes": 0}
    counters_lock = threading.Lock()

    def worker(task_index: int) -> None:
        rng = derive(seed, "collection-workload", model.name, task_index)
        local_reads = 0
        local_writes = 0
        for _ in range(ops_per_task):
            key = int(rng.integers(0, key_space))
            if rng.random() < read_fraction:
                local_reads += 1
                lock = model.read_lock(key)
                if lock is None:
                    executor.compute(model.read_cost)
                else:
                    with executor.critical(f"{model.name}:{lock}"):
                        executor.compute(model.read_cost)
            else:
                local_writes += 1
                cost = model.write_cost + model.write_cost_per_element * collection_size
                lock = model.write_lock(key)
                if lock is None:
                    executor.compute(cost)
                else:
                    with executor.critical(f"{model.name}:{lock}"):
                        executor.compute(cost)
        with counters_lock:
            counters["reads"] += local_reads
            counters["writes"] += local_writes

    futures = [executor.submit(worker, i, name=f"{model.name}-w{i}") for i in range(tasks)]
    for f in futures:
        f.result()
    return WorkloadResult(
        model=model.name,
        tasks=tasks,
        ops_per_task=ops_per_task,
        read_fraction=read_fraction,
        reads=counters["reads"],
        writes=counters["writes"],
    )
