"""Sets: synchronized vs striped-concurrent (backed by the striped map)."""

from __future__ import annotations

import threading
from typing import Generic, Hashable, Iterable, Iterator, TypeVar

from repro.concurrentlib.maps import StripedHashMap

__all__ = ["SynchronizedSet", "ConcurrentHashSet"]

T = TypeVar("T", bound=Hashable)
_PRESENT = object()


class SynchronizedSet(Generic[T]):
    """A set guarded by one mutex."""

    def __init__(self, items: Iterable[T] = ()) -> None:
        self._data = set(items)
        self._lock = threading.Lock()

    def add(self, item: T) -> bool:
        """Add; True if the item was new."""
        with self._lock:
            if item in self._data:
                return False
            self._data.add(item)
            return True

    def discard(self, item: T) -> bool:
        with self._lock:
            if item in self._data:
                self._data.discard(item)
                return True
            return False

    def __contains__(self, item: T) -> bool:
        with self._lock:
            return item in self._data

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def snapshot(self) -> set[T]:
        with self._lock:
            return set(self._data)


class ConcurrentHashSet(Generic[T]):
    """Striped concurrent set (a striped map with presence values)."""

    def __init__(self, items: Iterable[T] = (), stripes: int = 16) -> None:
        self._map: StripedHashMap = StripedHashMap(stripes=stripes)
        for item in items:
            self.add(item)

    def add(self, item: T) -> bool:
        return self._map.put_if_absent(item, _PRESENT) is None

    def discard(self, item: T) -> bool:
        return self._map.remove(item) is not None

    def __contains__(self, item: T) -> bool:
        return item in self._map

    def __len__(self) -> int:
        return len(self._map)

    def snapshot(self) -> set[T]:
        return set(self._map.snapshot().keys())

    def __iter__(self) -> Iterator[T]:
        return self._map.keys()
