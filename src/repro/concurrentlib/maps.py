"""Maps: single-lock synchronized vs lock-striped concurrent.

``SynchronizedDict`` is "a standard collection used with locks" from the
project-9 brief; ``StripedHashMap`` is the ``ConcurrentHashMap`` analogue
— N independent stripes, each with its own lock, so operations on
different stripes never contend.  The stripe count is the knob the bench
sweeps.
"""

from __future__ import annotations

import threading
from typing import Callable, Generic, Hashable, Iterator, TypeVar

__all__ = ["SynchronizedDict", "StripedHashMap"]

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class SynchronizedDict(Generic[K, V]):
    """A dict guarded by one global mutex (the coarse-grained baseline)."""

    def __init__(self) -> None:
        self._data: dict[K, V] = {}
        self._lock = threading.Lock()

    def get(self, key: K, default: V | None = None) -> V | None:
        with self._lock:
            return self._data.get(key, default)

    def put(self, key: K, value: V) -> V | None:
        with self._lock:
            old = self._data.get(key)
            self._data[key] = value
            return old

    def put_if_absent(self, key: K, value: V) -> V | None:
        with self._lock:
            if key in self._data:
                return self._data[key]
            self._data[key] = value
            return None

    def remove(self, key: K) -> V | None:
        with self._lock:
            return self._data.pop(key, None)

    def compute(self, key: K, fn: Callable[[K, V | None], V]) -> V:
        """Atomically update ``key`` with ``fn(key, current)``."""
        with self._lock:
            value = fn(key, self._data.get(key))
            self._data[key] = value
            return value

    def __contains__(self, key: K) -> bool:
        with self._lock:
            return key in self._data

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def snapshot(self) -> dict[K, V]:
        with self._lock:
            return dict(self._data)


class StripedHashMap(Generic[K, V]):
    """Hash map with per-stripe locking (ConcurrentHashMap's classic design).

    A key's stripe is ``hash(key) % stripes``; only that stripe's lock is
    taken, so the map supports up to ``stripes`` fully concurrent writers.
    Aggregate operations (``__len__``, ``snapshot``) take all stripe locks
    in index order (a total order, so no deadlock).
    """

    def __init__(self, stripes: int = 16) -> None:
        if stripes < 1:
            raise ValueError(f"stripes must be >= 1, got {stripes}")
        self.stripes = stripes
        self._segments: list[dict[K, V]] = [{} for _ in range(stripes)]
        self._locks = [threading.Lock() for _ in range(stripes)]

    def _index(self, key: K) -> int:
        return hash(key) % self.stripes

    def get(self, key: K, default: V | None = None) -> V | None:
        i = self._index(key)
        with self._locks[i]:
            return self._segments[i].get(key, default)

    def put(self, key: K, value: V) -> V | None:
        i = self._index(key)
        with self._locks[i]:
            old = self._segments[i].get(key)
            self._segments[i][key] = value
            return old

    def put_if_absent(self, key: K, value: V) -> V | None:
        i = self._index(key)
        with self._locks[i]:
            seg = self._segments[i]
            if key in seg:
                return seg[key]
            seg[key] = value
            return None

    def remove(self, key: K) -> V | None:
        i = self._index(key)
        with self._locks[i]:
            return self._segments[i].pop(key, None)

    def compute(self, key: K, fn: Callable[[K, V | None], V]) -> V:
        i = self._index(key)
        with self._locks[i]:
            seg = self._segments[i]
            value = fn(key, seg.get(key))
            seg[key] = value
            return value

    def __contains__(self, key: K) -> bool:
        i = self._index(key)
        with self._locks[i]:
            return key in self._segments[i]

    def __len__(self) -> int:
        total = 0
        for lock, seg in zip(self._locks, self._segments):
            with lock:
                total += len(seg)
        return total

    def snapshot(self) -> dict[K, V]:
        """Consistent copy: all stripe locks held together, index order."""
        for lock in self._locks:
            lock.acquire()
        try:
            out: dict[K, V] = {}
            for seg in self._segments:
                out.update(seg)
            return out
        finally:
            for lock in self._locks:
                lock.release()

    def keys(self) -> Iterator[K]:
        """Weakly consistent key iteration (stripe by stripe)."""
        for lock, seg in zip(self._locks, self._segments):
            with lock:
                keys = list(seg.keys())
            yield from keys
