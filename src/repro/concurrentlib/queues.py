"""Queues: bounded blocking and two-lock concurrent.

``ArrayBlockingQueue`` mirrors the Java class of the same name: a bounded
FIFO with blocking put/take, the producer/consumer workhorse.
``ConcurrentLinkedQueue`` uses the Michael–Scott *two-lock* variant
(one lock per end), so an enqueuer and a dequeuer never contend with each
other — the structural advantage the project-9 bench measures against a
single-lock queue.
"""

from __future__ import annotations

import threading
from typing import Generic, Iterable, TypeVar

__all__ = ["ArrayBlockingQueue", "ConcurrentLinkedQueue"]

T = TypeVar("T")


class ArrayBlockingQueue(Generic[T]):
    """Bounded FIFO with blocking ``put``/``take`` and timed variants."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._items: list[T] = []
        self._cond = threading.Condition()

    def put(self, item: T, timeout: float | None = None) -> bool:
        """Append; blocks while full.  Returns False on timeout."""
        with self._cond:
            if not self._cond.wait_for(lambda: len(self._items) < self.capacity, timeout=timeout):
                return False
            self._items.append(item)
            self._cond.notify_all()
            return True

    def take(self, timeout: float | None = None) -> T:
        """Remove and return the head; blocks while empty.

        Raises ``TimeoutError`` on timeout (so ``None`` stays a valid item).
        """
        with self._cond:
            if not self._cond.wait_for(lambda: self._items, timeout=timeout):
                raise TimeoutError("take timed out")
            item = self._items.pop(0)
            self._cond.notify_all()
            return item

    def offer(self, item: T) -> bool:
        """Non-blocking put; False if full."""
        with self._cond:
            if len(self._items) >= self.capacity:
                return False
            self._items.append(item)
            self._cond.notify_all()
            return True

    def poll(self) -> T | None:
        """Non-blocking take; None if empty."""
        with self._cond:
            if not self._items:
                return None
            item = self._items.pop(0)
            self._cond.notify_all()
            return item

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)

    def remaining_capacity(self) -> int:
        with self._cond:
            return self.capacity - len(self._items)


class _Node(Generic[T]):
    __slots__ = ("value", "next")

    def __init__(self, value: T | None) -> None:
        self.value = value
        self.next: "_Node[T] | None" = None


class ConcurrentLinkedQueue(Generic[T]):
    """Unbounded FIFO with separate head and tail locks.

    Invariant: the list always contains a dummy head node; ``head`` is
    the dummy, ``head.next`` the real front.  Enqueue touches only
    ``tail`` (+ tail lock); dequeue only ``head`` (+ head lock).
    """

    def __init__(self, items: Iterable[T] = ()) -> None:
        dummy: _Node[T] = _Node(None)
        self._head = dummy
        self._tail = dummy
        self._head_lock = threading.Lock()
        self._tail_lock = threading.Lock()
        self._size = 0
        self._size_lock = threading.Lock()
        for item in items:
            self.offer(item)

    def offer(self, item: T) -> bool:
        """Append at the tail (never blocks; the queue is unbounded)."""
        if item is None:
            raise ValueError("ConcurrentLinkedQueue does not accept None (as in Java)")
        node = _Node(item)
        with self._tail_lock:
            self._tail.next = node
            self._tail = node
        with self._size_lock:
            self._size += 1
        return True

    def poll(self) -> T | None:
        """Detach and return the head, or None when empty."""
        with self._head_lock:
            front = self._head.next
            if front is None:
                return None
            # Detach: the old dummy is dropped, front becomes the new dummy.
            self._head = front
            value = front.value
            front.value = None  # help GC, and keep dummy truly empty
        with self._size_lock:
            self._size -= 1
        return value

    def peek(self) -> T | None:
        with self._head_lock:
            front = self._head.next
            return front.value if front is not None else None

    def __len__(self) -> int:
        with self._size_lock:
            return self._size

    def is_empty(self) -> bool:
        return len(self) == 0

    def drain(self) -> list[T]:
        """Poll everything currently enqueued (weakly consistent)."""
        out: list[T] = []
        while True:
            item = self.poll()
            if item is None and self.is_empty():
                return out
            if item is not None:
                out.append(item)
