"""Atomic variables with CAS semantics.

CPython has no user-level CAS, so these use a private lock per variable —
the *semantics* (linearisable read-modify-write, failed-CAS retry loops)
are what project 9's comparisons and the teaching snippets need, and the
interface mirrors ``java.util.concurrent.atomic``.
"""

from __future__ import annotations

import threading
from typing import Callable, Generic, TypeVar

__all__ = ["AtomicInteger", "AtomicBoolean", "AtomicReference"]

T = TypeVar("T")


class AtomicReference(Generic[T]):
    """Linearisable reference cell with compare-and-set."""

    def __init__(self, value: T | None = None) -> None:
        self._lock = threading.Lock()
        self._value = value
        self._cas_failures = 0

    def get(self) -> T | None:
        with self._lock:
            return self._value

    def set(self, value: T) -> None:
        with self._lock:
            self._value = value

    def get_and_set(self, value: T) -> T | None:
        with self._lock:
            old, self._value = self._value, value
            return old

    def compare_and_set(self, expected: T | None, new: T) -> bool:
        """Atomically set to ``new`` iff current is ``expected`` (by ``is``
        or ``==``, matching Java's reference equality loosely for Python)."""
        with self._lock:
            current = self._value
            if current is expected or current == expected:
                self._value = new
                return True
            self._cas_failures += 1
            return False

    def update_and_get(self, fn: Callable[[T | None], T]) -> T:
        """Atomically apply ``fn`` to the current value (no retry needed —
        we hold the cell lock, the Python stand-in for a CAS loop)."""
        with self._lock:
            self._value = fn(self._value)
            return self._value

    @property
    def cas_failures(self) -> int:
        """Failed CAS count — the contention signal project 9 plots."""
        with self._lock:
            return self._cas_failures

    def __repr__(self) -> str:
        return f"AtomicReference({self.get()!r})"


class AtomicInteger:
    """Linearisable integer with the classic arithmetic RMW operations."""

    def __init__(self, value: int = 0) -> None:
        self._lock = threading.Lock()
        self._value = int(value)
        self._cas_failures = 0

    def get(self) -> int:
        with self._lock:
            return self._value

    def set(self, value: int) -> None:
        with self._lock:
            self._value = int(value)

    def get_and_increment(self) -> int:
        return self.get_and_add(1)

    def increment_and_get(self) -> int:
        return self.add_and_get(1)

    def get_and_add(self, delta: int) -> int:
        with self._lock:
            old = self._value
            self._value += delta
            return old

    def add_and_get(self, delta: int) -> int:
        with self._lock:
            self._value += delta
            return self._value

    def compare_and_set(self, expected: int, new: int) -> bool:
        with self._lock:
            if self._value == expected:
                self._value = new
                return True
            self._cas_failures += 1
            return False

    def update_and_get(self, fn: Callable[[int], int]) -> int:
        with self._lock:
            self._value = fn(self._value)
            return self._value

    @property
    def cas_failures(self) -> int:
        with self._lock:
            return self._cas_failures

    def __int__(self) -> int:
        return self.get()

    def __repr__(self) -> str:
        return f"AtomicInteger({self.get()})"


class AtomicBoolean:
    """Linearisable boolean; ``compare_and_set(False, True)`` is the
    classic one-shot latch used in the teaching snippets."""

    def __init__(self, value: bool = False) -> None:
        self._lock = threading.Lock()
        self._value = bool(value)

    def get(self) -> bool:
        with self._lock:
            return self._value

    def set(self, value: bool) -> None:
        with self._lock:
            self._value = bool(value)

    def compare_and_set(self, expected: bool, new: bool) -> bool:
        with self._lock:
            if self._value == expected:
                self._value = bool(new)
                return True
            return False

    def get_and_set(self, value: bool) -> bool:
        with self._lock:
            old, self._value = self._value, bool(value)
            return old

    def __bool__(self) -> bool:
        return self.get()

    def __repr__(self) -> str:
        return f"AtomicBoolean({self.get()})"
