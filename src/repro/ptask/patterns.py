"""Parallel programming patterns built on Parallel Task.

Section V-B of the paper reports, as a research outcome of the course,
"the conception of parallel programming patterns using Parallel Task".
This module is that library: the classic algorithmic skeletons expressed
with spawn/futures/dependences, so applications state *what* is parallel
and the pattern supplies *how*.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence, TypeVar

from repro.executor.future import Future
from repro.ptask.runtime import ParallelTaskRuntime

__all__ = ["parallel_map", "parallel_reduce", "divide_and_conquer", "pipeline", "task_farm"]

T = TypeVar("T")
R = TypeVar("R")


def parallel_map(
    rt: ParallelTaskRuntime,
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    grain: int = 1,
    cost_fn: Callable[[T], float] | None = None,
    name: str = "pmap",
) -> list[R]:
    """Apply ``fn`` to every item in parallel; results in order.

    ``grain`` items are batched per task — the granularity knob every
    project in the course ends up sweeping.
    """
    if grain < 1:
        raise ValueError(f"grain must be >= 1, got {grain}")
    if not items:
        return []

    def run_chunk(chunk: Sequence[T]) -> list[R]:
        return [fn(x) for x in chunk]

    futures: list[Future] = []
    for start in range(0, len(items), grain):
        chunk = items[start : start + grain]
        cost = sum(cost_fn(x) for x in chunk) if cost_fn else None
        futures.append(rt.spawn(run_chunk, chunk, cost=cost, name=f"{name}[{start}]"))
    out: list[R] = []
    for f in futures:
        out.extend(f.result())
    return out


def parallel_reduce(
    rt: ParallelTaskRuntime,
    op: Callable[[R, R], R],
    items: Sequence[R],
    *,
    identity: R | None = None,
    grain: int = 2,
    cost_per_item: float | None = None,
    name: str = "preduce",
) -> R:
    """Tree reduction: leaves fold ``grain`` items, internal nodes combine.

    ``op`` must be associative for the result to equal the sequential
    fold (the property tests check exactly this).
    """
    if grain < 1:
        raise ValueError(f"grain must be >= 1, got {grain}")
    if not items:
        if identity is None:
            raise ValueError("empty reduction needs an identity")
        return identity

    def fold_leaf(chunk: Sequence[R]) -> R:
        it = iter(chunk)
        acc = identity if identity is not None else next(it)
        for x in it:
            acc = op(acc, x)
        return acc

    level: list[Future] = []
    for start in range(0, len(items), grain):
        chunk = items[start : start + grain]
        cost = cost_per_item * len(chunk) if cost_per_item is not None else None
        level.append(rt.spawn(fold_leaf, chunk, cost=cost, name=f"{name}.leaf[{start}]"))

    def combine(a: Future, b: Future) -> R:
        return op(a.result(), b.result())

    depth = 0
    while len(level) > 1:
        nxt: list[Future] = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(
                rt.spawn(
                    combine,
                    level[i],
                    level[i + 1],
                    cost=cost_per_item,
                    name=f"{name}.node[{depth},{i}]",
                    depends_on=[level[i], level[i + 1]],
                )
            )
        if len(level) % 2 == 1:
            nxt.append(level[-1])
        level = nxt
        depth += 1
    return level[0].result()


def divide_and_conquer(
    rt: ParallelTaskRuntime,
    problem: T,
    *,
    is_base: Callable[[T], bool],
    solve_base: Callable[[T], R],
    divide: Callable[[T], Sequence[T]],
    combine: Callable[[T, Sequence[R]], R],
    spawn_depth: int = 6,
    base_cost: Callable[[T], float] | None = None,
    name: str = "dac",
) -> R:
    """Generic divide-and-conquer with depth-bounded task spawning.

    Below ``spawn_depth`` the recursion continues sequentially inside the
    current task — the standard cutoff technique that keeps task-creation
    overhead from swamping fine-grained problems (quicksort's cutoff
    sweep in the project 2 bench is this knob).
    """

    def solve(p: T, depth: int) -> R:
        if is_base(p):
            if base_cost is not None:
                rt.executor.compute(base_cost(p))
            return solve_base(p)
        subproblems = divide(p)
        if depth >= spawn_depth:
            return combine(p, [solve(sp, depth + 1) for sp in subproblems])
        futures = [
            rt.spawn(solve, sp, depth + 1, name=f"{name}[d{depth}]") for sp in subproblems
        ]
        return combine(p, [f.result() for f in futures])

    return solve(problem, 0)


def pipeline(
    rt: ParallelTaskRuntime,
    stages: Sequence[Callable[[Any], Any]],
    items: Sequence[Any],
    *,
    stage_costs: Sequence[float] | None = None,
    name: str = "pipe",
) -> list[Any]:
    """Software pipeline: item *j* flows through stages 0..k in order.

    Stage *i* of item *j* depends on stage *i-1* of item *j* (dataflow)
    and stage *i* of item *j-1* (each stage is a serial station), which
    is what makes throughput scale with the number of stages while
    latency stays the sum of stage times.
    """
    if not stages:
        raise ValueError("pipeline needs at least one stage")
    if stage_costs is not None and len(stage_costs) != len(stages):
        raise ValueError("stage_costs must match stages")
    grid: list[list[Future]] = [[] for _ in range(len(stages))]
    for j, item in enumerate(items):
        carry: Any = item
        for i, stage in enumerate(stages):
            deps: list[Future] = []
            if i > 0:
                deps.append(grid[i - 1][j])
            if j > 0:
                deps.append(grid[i][j - 1])

            def run(stage_fn: Callable[[Any], Any], upstream: Future | None, raw: Any) -> Any:
                value = upstream.result() if upstream is not None else raw
                return stage_fn(value)

            upstream = grid[i - 1][j] if i > 0 else None
            f = rt.spawn(
                run,
                stage,
                upstream,
                carry,
                cost=stage_costs[i] if stage_costs else None,
                name=f"{name}[s{i},i{j}]",
                depends_on=deps,
            )
            grid[i].append(f)
    return [f.result() for f in grid[-1]]


def task_farm(
    rt: ParallelTaskRuntime,
    worker: Callable[[T], R],
    items: Sequence[T],
    *,
    workers: int,
    cost_fn: Callable[[T], float] | None = None,
    name: str = "farm",
) -> list[R]:
    """Fixed-size worker farm: items dealt round-robin to ``workers`` lanes.

    Each lane processes its items serially (chained by dependences); the
    lanes run in parallel.  This models a bounded worker pool inside an
    unbounded task runtime and is the baseline the dynamic patterns are
    compared against in the schedule-ablation bench.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    results: list[Future | None] = [None] * len(items)
    lane_tail: list[Future | None] = [None] * workers
    for j, item in enumerate(items):
        lane = j % workers
        deps = [lane_tail[lane]] if lane_tail[lane] is not None else []
        f = rt.spawn(
            worker,
            item,
            cost=cost_fn(item) if cost_fn else None,
            name=f"{name}[w{lane},{j}]",
            depends_on=deps,
        )
        lane_tail[lane] = f
        results[j] = f
    return [f.result() for f in results]  # type: ignore[union-attr]
