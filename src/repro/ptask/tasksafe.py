"""Task-safe classes: project 6 ("Task-aware libraries for Parallel Task").

The project brief: in a tasking model, "using a 'thread-safe' class does
not necessarily equate to a correct solution".  Two hazards make
thread-keyed constructs wrong under a task runtime:

1. **Sharing** — one worker thread executes many tasks over its lifetime,
   so a *thread*-local leaks one task's state into the next task that
   happens to land on the same worker.
2. **Nesting** — with blocked-join helping (and with inline/simulated
   execution), a task can run *nested inside* another task on the same
   thread; a lock that is reentrant **by thread** then silently admits
   the nested task into its parent's critical section.

The classes here are the task-keyed counterparts: they consult
``executor.task_id()`` instead of the OS thread identity.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Generic, Iterable, TypeVar

from repro.executor.base import Executor

__all__ = ["TaskLocal", "TaskSafeLock", "TaskSafeAccumulator", "TaskSafeCollector"]

T = TypeVar("T")


class TaskLocal(Generic[T]):
    """Per-*task* storage (the task-safe counterpart of ``threading.local``).

    Values are keyed by task id, so a worker thread moving on to another
    task — or helping with a nested one — never observes a previous
    task's value.
    """

    def __init__(self, executor: Executor, default_factory: Callable[[], T] | None = None) -> None:
        self._executor = executor
        self._default_factory = default_factory
        self._values: dict[int, T] = {}
        self._lock = threading.Lock()

    def get(self) -> T:
        tid = self._executor.task_id()
        with self._lock:
            if tid not in self._values:
                if self._default_factory is None:
                    raise LookupError(f"no task-local value set for task {tid}")
                self._values[tid] = self._default_factory()
            return self._values[tid]

    def set(self, value: T) -> None:
        with self._lock:
            self._values[self._executor.task_id()] = value

    def clear(self) -> None:
        """Drop the current task's value (called at task exit if desired)."""
        with self._lock:
            self._values.pop(self._executor.task_id(), None)

    def is_set(self) -> bool:
        with self._lock:
            return self._executor.task_id() in self._values

    def live_tasks(self) -> int:
        """How many distinct tasks currently hold a value (observability)."""
        with self._lock:
            return len(self._values)


class TaskSafeLock:
    """A lock reentrant by *task*, not by thread.

    ``threading.RLock`` lets any code on the owning thread re-enter — so
    a nested task (helping) walks straight into its parent's critical
    section.  This lock records the owning *task*: the same task may
    re-enter; a different task must wait, **even on the same thread**.

    Because a nested task blocking on its parent's lock can never succeed
    (the parent is suspended beneath it), that situation is detected and
    raised as a deadlock error rather than hanging — which is precisely
    the teaching point of project 6.
    """

    def __init__(self, executor: Executor, name: str = "tasklock") -> None:
        self._executor = executor
        self.name = name
        self._cond = threading.Condition()
        self._owner_task: int | None = None
        self._owner_thread: int | None = None
        self._depth = 0

    def acquire(self, timeout: float | None = None) -> bool:
        """Acquire for the current task; detects same-thread nesting."""
        tid = self._executor.task_id()
        me = threading.get_ident()
        with self._cond:
            if self._owner_task == tid:
                self._depth += 1
                return True
            if self._owner_task is not None and self._owner_thread == me:
                # A *different* task on the owner's own thread: the owner is
                # suspended beneath us and can never release. Fail fast.
                raise RuntimeError(
                    f"task-safe lock {self.name!r}: task {tid} is nested inside "
                    f"owning task {self._owner_task} on the same thread - "
                    "unavoidable deadlock (this is the thread-safe-vs-task-safe trap)"
                )
            if not self._cond.wait_for(lambda: self._owner_task is None, timeout=timeout):
                return False
            self._owner_task = tid
            self._owner_thread = me
            self._depth = 1
            return True

    def release(self) -> None:
        """Release one level of the current task's hold."""
        tid = self._executor.task_id()
        with self._cond:
            if self._owner_task != tid:
                raise RuntimeError(
                    f"task-safe lock {self.name!r}: release by task {tid}, owner is {self._owner_task}"
                )
            self._depth -= 1
            if self._depth == 0:
                self._owner_task = None
                self._owner_thread = None
                self._cond.notify_all()

    def __enter__(self) -> "TaskSafeLock":
        self.acquire()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.release()

    @property
    def owner(self) -> int | None:
        with self._cond:
            return self._owner_task


class TaskSafeAccumulator:
    """Contention-free numeric accumulation with per-task partials.

    The task-safe analogue of ``LongAdder``: each task accumulates into
    its own cell; ``value()`` folds the cells.  Correct under any
    interleaving because no cell is ever shared between tasks, and cheap
    because the hot path takes no contended lock.
    """

    def __init__(self, executor: Executor, initial: float = 0.0) -> None:
        self._executor = executor
        self._cells: dict[int, float] = {}
        self._lock = threading.Lock()
        self._base = initial

    def add(self, delta: float) -> None:
        tid = self._executor.task_id()
        with self._lock:  # guards the dict shape; per-key writes are disjoint
            self._cells[tid] = self._cells.get(tid, 0.0) + delta

    def value(self) -> float:
        with self._lock:
            return self._base + sum(self._cells.values())

    def reset(self) -> None:
        with self._lock:
            self._cells.clear()
            self._base = 0.0


class TaskSafeCollector(Generic[T]):
    """Order-deterministic parallel collection building.

    Tasks append into private per-task buffers; :meth:`collect` merges
    buffers **in task-id order**, so the result is independent of thread
    timing — unlike appending to a shared locked list, whose order
    changes run to run.  This is the pattern behind Pyjama's object
    reductions and several project workloads.
    """

    def __init__(self, executor: Executor) -> None:
        self._executor = executor
        self._buffers: dict[int, list[T]] = {}
        self._lock = threading.Lock()

    def append(self, item: T) -> None:
        tid = self._executor.task_id()
        with self._lock:
            self._buffers.setdefault(tid, []).append(item)

    def extend(self, items: Iterable[T]) -> None:
        tid = self._executor.task_id()
        with self._lock:
            self._buffers.setdefault(tid, []).extend(items)

    def collect(self) -> list[T]:
        """Merged contents, deterministic (task-id order, append order)."""
        with self._lock:
            out: list[T] = []
            for tid in sorted(self._buffers):
                out.extend(self._buffers[tid])
            return out

    def task_count(self) -> int:
        with self._lock:
            return len(self._buffers)

    def clear(self) -> None:
        with self._lock:
            self._buffers.clear()
