"""The Parallel Task runtime: spawn, dependences, notification, handlers.

Mirrors the Java tool's surface in Python idiom:

=============================  =========================================
Parallel Task (Java)           this module
=============================  =========================================
``TASK`` method modifier       :meth:`ParallelTaskRuntime.task` decorator
invoking a TASK method         :meth:`ParallelTaskRuntime.spawn`
``dependsOn(...)``             ``spawn(..., depends_on=[...])``
``TaskIDGroup`` / multi-task   :meth:`ParallelTaskRuntime.spawn_multi`
``notify(...)`` interim slots  ``publish()`` + ``notify=`` handler
``asyncCatch`` handlers        ``on_error=`` handler
=============================  =========================================

Notification handlers run on the GUI event-dispatch thread when the
runtime is constructed with one (``edt=``), exactly like the Java tool's
slot mechanism — this is what keeps GUIs responsive *and* safe, since all
widget mutation happens on the EDT.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable, Sequence

from repro.executor.base import Executor
from repro.executor.future import Future
from repro.obs.live.registry import attribute_task
from repro.ptask.multitask import MultiTaskFuture
from repro.resilience.cancel import CancelToken
from repro.resilience.retry import RetryPolicy

__all__ = ["ParallelTaskRuntime", "TaskFunction"]


class TaskFunction:
    """A function wrapped by :meth:`ParallelTaskRuntime.task`.

    Calling it runs synchronously (ordinary call); ``.spawn(...)`` runs
    it as a task and returns a future — the Python analogue of invoking a
    ``TASK`` method.
    """

    def __init__(
        self,
        runtime: "ParallelTaskRuntime",
        fn: Callable[..., Any],
        cost: float | Callable[..., float] | None = None,
    ) -> None:
        self._runtime = runtime
        self._fn = fn
        self._cost = cost
        self.__name__ = getattr(fn, "__name__", "task")
        self.__doc__ = fn.__doc__

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        return self._fn(*args, **kwargs)

    def _resolve_cost(self, args: tuple, kwargs: dict) -> float | None:
        if callable(self._cost):
            return float(self._cost(*args, **kwargs))
        return self._cost

    def spawn(self, *args: Any, **kwargs: Any) -> Future:
        return self._runtime.spawn(
            self._fn, *args, cost=self._resolve_cost(args, kwargs), name=self.__name__, **kwargs
        )

    def spawn_multi(self, items: Sequence[Any], **kwargs: Any) -> MultiTaskFuture:
        cost = self._cost if callable(self._cost) else (None if self._cost is None else lambda _i: self._cost)
        return self._runtime.spawn_multi(self._fn, items, cost_fn=cost, name=self.__name__, **kwargs)

    def __repr__(self) -> str:
        return f"TaskFunction({self.__name__!r})"


class ParallelTaskRuntime:
    """Front end over an :class:`~repro.executor.base.Executor`."""

    def __init__(self, executor: Executor, edt: Any | None = None) -> None:
        """
        Parameters
        ----------
        executor:
            Backend: inline, thread pool or simulated.
        edt:
            Optional event-dispatch thread (anything with
            ``invoke_later(fn, *args)``, see :mod:`repro.gui.edt`).  When
            set, ``notify`` and ``on_error`` handlers are dispatched to
            it instead of running on the worker.
        """
        self.executor = executor
        self.edt = edt
        #: observability: the runtime shares its executor's recorder so
        #: spawn/notify/error events land on the same timeline as the
        #: backend's task spans (see :mod:`repro.obs`).
        self.trace = executor.trace
        self._notify_handlers: dict[int, Callable[[Any], None]] = {}
        self._handler_lock = threading.Lock()

    # -- decorators ------------------------------------------------------------

    def task(
        self, fn: Callable[..., Any] | None = None, *, cost: float | Callable[..., float] | None = None
    ) -> Any:
        """Mark a function as a task: ``@rt.task`` or ``@rt.task(cost=...)``."""
        if fn is not None:
            return TaskFunction(self, fn)

        def deco(f: Callable[..., Any]) -> TaskFunction:
            return TaskFunction(self, f, cost=cost)

        return deco

    # -- spawning ---------------------------------------------------------------

    def spawn(
        self,
        fn: Callable[..., Any],
        *args: Any,
        cost: float | None = None,
        name: str = "",
        depends_on: Sequence[Future] = (),
        notify: Callable[[Any], None] | None = None,
        on_error: Callable[[BaseException], None] | None = None,
        cancel: CancelToken | None = None,
        deadline: float | None = None,
        retry: RetryPolicy | None = None,
        **kwargs: Any,
    ) -> Future:
        """Run ``fn`` as a task; returns its future immediately.

        ``depends_on`` futures must complete (successfully) first.
        ``notify`` receives values the task ``publish()``-es while running.
        ``on_error`` receives the exception if the task fails — the
        asynchronous-catch mechanism; without it, failures surface at
        ``future.result()`` as usual.

        Lifecycle controls (see :mod:`repro.resilience`): ``cancel``
        links a :class:`~repro.resilience.CancelToken`, ``deadline``
        cancels the task if it has not started within that many seconds,
        and ``retry`` re-runs a failing body under the given
        :class:`~repro.resilience.RetryPolicy` *inside* the task —
        backoff is accounted through ``executor.compute`` (virtual
        seconds on the sim backend) and each retry emits a trace event.
        """
        task_name = name or getattr(fn, "__name__", "task")
        call = fn
        if retry is not None:
            # Innermost wrapper: retries happen inside the task, so one
            # spawn = one future whatever the attempt count.  The trace
            # recorder is passed explicitly — the ambient one is
            # thread-local and invisible on pool worker threads.
            def call(*a: Any, **kw: Any) -> Any:
                return retry.run(
                    fn,
                    *a,
                    sleep=self.executor.compute,
                    key=task_name,
                    trace=self.trace,
                    **kw,
                )

        if notify is None:
            body = call
        else:
            # Register the handler under the child's task id at the moment
            # the child starts executing (we don't know the id earlier).
            def body(*a: Any, **kw: Any) -> Any:
                tid = self.executor.task_id()
                with self._handler_lock:
                    self._notify_handlers[tid] = notify
                try:
                    return call(*a, **kw)
                finally:
                    with self._handler_lock:
                        self._notify_handlers.pop(tid, None)

        # Outermost wrapper: live-sample attribution.  On pool workers
        # this just refines the registry scope the executor already set;
        # on backends that run tasks on the caller's thread (inline, sim)
        # it is the only thing that names the sample — and it no-ops on
        # unregistered threads.
        run = body

        def attributed(*a: Any, **kw: Any) -> Any:
            with attribute_task(task_name):
                return run(*a, **kw)

        future = self.executor.submit(
            attributed,
            *args,
            cost=cost,
            name=task_name,
            after=depends_on,
            cancel=cancel,
            deadline=deadline,
            **kwargs,
        )
        if self.trace.enabled:
            self.trace.event(
                "spawn",
                future.name,
                task_id=future.meta.get("tid", 0),
                parent=self.executor.task_id(),
                deps=len(depends_on),
                notify=notify is not None,
            )
            self.trace.count("ptask.spawns")
        if on_error is not None:
            def route_error(f: Future) -> None:
                exc = f.exception()
                if exc is not None:
                    if self.trace.enabled:
                        self.trace.event("error", f.name, exception=type(exc).__name__)
                        self.trace.count("ptask.errors_routed")
                    self._dispatch(on_error, exc)

            future.add_done_callback(route_error)
        return future

    def spawn_multi(
        self,
        fn: Callable[..., Any],
        items: Sequence[Any],
        *,
        cost_fn: Callable[[Any], float] | None = None,
        name: str = "",
        depends_on: Sequence[Future] = (),
        notify: Callable[[Any], None] | None = None,
        on_error: Callable[[BaseException], None] | None = None,
        cancel: CancelToken | None = None,
        deadline: float | None = None,
        retry: RetryPolicy | None = None,
    ) -> MultiTaskFuture:
        """Multi-task: ``fn(item, index)`` over each item, one sub-task each.

        The Java tool's ``TASK(*)``: a single logical task expanded over a
        collection, with one aggregate future (``TaskIDGroup``).  One
        ``cancel`` token covers every sub-task; ``deadline``/``retry``
        apply to each sub-task individually.
        """
        name = name or getattr(fn, "__name__", "multi")
        arity = _accepts_index(fn)
        futures = []
        for i, item in enumerate(items):
            args = (item, i) if arity else (item,)
            futures.append(
                self.spawn(
                    fn,
                    *args,
                    cost=cost_fn(item) if cost_fn else None,
                    name=f"{name}[{i}]",
                    depends_on=depends_on,
                    notify=notify,
                    on_error=on_error,
                    cancel=cancel,
                    deadline=deadline,
                    retry=retry,
                )
            )
        return MultiTaskFuture(futures, name=name)

    # -- interim results ------------------------------------------------------------

    def publish(self, value: Any) -> None:
        """Called *inside* a task: deliver an interim value to its handler.

        No-op if the task was spawned without ``notify=`` (matching the
        Java tool, where un-slotted notifications are dropped).
        """
        tid = self.executor.task_id()
        with self._handler_lock:
            handler = self._notify_handlers.get(tid)
        if self.trace.enabled:
            self.trace.event("notify", f"task{tid}", task_id=tid, delivered=handler is not None)
            self.trace.count("ptask.notifications")
        if handler is not None:
            self._dispatch(handler, value)

    def _dispatch(self, handler: Callable[..., None], *args: Any) -> None:
        if self.edt is not None:
            self.edt.invoke_later(handler, *args)
        else:
            handler(*args)

    # -- conveniences ---------------------------------------------------------------

    def barrier_sync(self, futures: Iterable[Future]) -> list[Any]:
        """Wait for all futures; results in order (first error raises)."""
        return [f.result() for f in futures]

    def __repr__(self) -> str:
        return f"ParallelTaskRuntime({self.executor!r}, edt={self.edt!r})"


def _accepts_index(fn: Callable[..., Any]) -> bool:
    """Does ``fn`` take a second positional parameter (the item index)?"""
    import inspect

    try:
        params = [
            p
            for p in inspect.signature(fn).parameters.values()
            if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
        ]
    except (TypeError, ValueError):  # builtins without signatures
        return False
    if any(
        p.kind == p.VAR_POSITIONAL for p in inspect.signature(fn).parameters.values()
    ):
        return True
    return len(params) >= 2
