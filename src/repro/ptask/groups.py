"""Task groups: collect related futures and wait on them as a unit."""

from __future__ import annotations

import time
from typing import Any, Callable, Iterator, Sequence

from repro.executor.future import Future

__all__ = ["TaskGroup"]


class TaskGroup:
    """A mutable collection of futures treated as one unit of work.

    Unlike :class:`~repro.ptask.multitask.MultiTaskFuture` (the fixed
    result of one multi-task expansion), a group grows as a program
    spawns related tasks — e.g. all search tasks of one query — and is
    then joined or cancelled-by-ignoring as a unit.

    >>> group = TaskGroup("query-7")
    >>> group.add(rt.spawn(search, f))           # doctest: +SKIP
    >>> results = group.join()                   # doctest: +SKIP
    """

    def __init__(self, name: str = "group") -> None:
        self.name = name
        self._futures: list[Future] = []

    def add(self, future: Future) -> Future:
        """Track ``future``; returns it for call-site chaining."""
        self._futures.append(future)
        return future

    def extend(self, futures: Sequence[Future]) -> None:
        self._futures.extend(futures)

    def __len__(self) -> int:
        return len(self._futures)

    def __iter__(self) -> Iterator[Future]:
        return iter(self._futures)

    def done(self) -> bool:
        return all(f.done() for f in self._futures)

    def pending_count(self) -> int:
        return sum(1 for f in self._futures if not f.done())

    def join(self, timeout: float | None = None, cancel_on_timeout: bool = False) -> list[Any]:
        """Wait for every member; results in add order (first error raises).

        ``timeout`` is one budget for the *whole* join, not per member.
        On expiry, ``cancel_on_timeout=True`` cancels the still-pending
        members (so timed-out work is reclaimed, not abandoned) before
        the ``TimeoutError`` propagates.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        try:
            results = []
            for f in self._futures:
                remaining = None
                if deadline is not None:
                    remaining = max(0.0, deadline - time.monotonic())
                results.append(f.result(timeout=remaining))
            return results
        except TimeoutError:
            if cancel_on_timeout:
                self.cancel_all(f"group {self.name!r} join timed out after {timeout}s")
            raise

    def cancel_all(self, reason: str = "") -> int:
        """Cancel every not-yet-started member; returns how many were.

        Members already running (or done) are unaffected — cancellation
        is cooperative, see :meth:`repro.executor.future.Future.cancel`.
        """
        return sum(
            1 for f in self._futures if f.cancel(reason or f"group {self.name!r} cancelled")
        )

    def join_settled(self) -> tuple[list[Any], list[BaseException]]:
        """Wait for every member; split successes from failures."""
        values: list[Any] = []
        errors: list[BaseException] = []
        for f in self._futures:
            exc = f.exception()
            if exc is None:
                values.append(f.result())
            else:
                errors.append(exc)
        return values, errors

    def on_each_done(self, callback: Callable[[Future], None]) -> None:
        """Invoke ``callback`` as each *current* member completes."""
        for f in self._futures:
            f.add_done_callback(callback)

    def __repr__(self) -> str:
        return f"TaskGroup({self.name!r}, {len(self)} tasks, {self.pending_count()} pending)"
