"""Parallel Task: task parallelism with dependences and GUI awareness.

A Python reimplementation of the PARC lab's *Parallel Task* (Giacaman &
Sinnen, IJPP 2013; paper §IV-B): object-oriented task parallelism in
which methods become asynchronously executed *tasks* with

* futures for results (``TaskFuture`` = :class:`repro.executor.Future`),
* declarative **task dependences** (``depends_on=...``),
* **multi-tasks** (one logical task expanded over a collection),
* **interim result notification** routed to a GUI event-dispatch thread
  (the concurrency-for-responsiveness half of the PARC distinction
  between *concurrency* and *parallelism*),
* asynchronous exception handlers,
* task groups, parallel patterns, and the sequential/parallel
  polymorphic-switch idiom reported as a student outcome (§V-B),
* task-local storage and **task-safe collections** (project 6).

Everything runs on any :class:`repro.executor.Executor`, so the same
program text executes sequentially, on real threads, or in virtual time.
"""

from repro.ptask.groups import TaskGroup
from repro.ptask.multitask import MultiTaskFuture
from repro.ptask.patterns import divide_and_conquer, parallel_map, parallel_reduce, pipeline, task_farm
from repro.ptask.runtime import ParallelTaskRuntime, TaskFunction
from repro.ptask.seqpar import Parallelizable
from repro.ptask.tasksafe import (
    TaskLocal,
    TaskSafeAccumulator,
    TaskSafeCollector,
    TaskSafeLock,
)

__all__ = [
    "ParallelTaskRuntime",
    "TaskFunction",
    "TaskGroup",
    "MultiTaskFuture",
    "parallel_map",
    "parallel_reduce",
    "divide_and_conquer",
    "pipeline",
    "task_farm",
    "Parallelizable",
    "TaskLocal",
    "TaskSafeLock",
    "TaskSafeAccumulator",
    "TaskSafeCollector",
]
