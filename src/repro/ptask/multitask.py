"""Multi-task futures: the aggregate handle of a ``TASK(*)`` expansion.

In Parallel Task, invoking a multi-task over a collection returns a
``TaskIDGroup`` that can be waited on as a unit.  This is the Python
analogue: an ordered collection of sub-task futures with aggregate
waiting, indexing and progress inspection.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.executor.future import Future

__all__ = ["MultiTaskFuture"]


class MultiTaskFuture:
    """Aggregate over the futures of one multi-task's sub-tasks."""

    def __init__(self, futures: Sequence[Future], name: str = "multi") -> None:
        self._futures = list(futures)
        self.name = name

    def __len__(self) -> int:
        return len(self._futures)

    def __iter__(self) -> Iterator[Future]:
        return iter(self._futures)

    def __getitem__(self, i: int) -> Future:
        return self._futures[i]

    def done(self) -> bool:
        return all(f.done() for f in self._futures)

    def completed_count(self) -> int:
        """How many sub-tasks have finished (progress-bar support)."""
        return sum(1 for f in self._futures if f.done())

    def results(self, timeout: float | None = None) -> list[Any]:
        """All sub-results in item order; first failure raises."""
        return [f.result(timeout=timeout) for f in self._futures]

    def result(self, timeout: float | None = None) -> list[Any]:
        """Alias for :meth:`results`, so a multi-task future can stand in
        wherever a plain future is awaited."""
        return self.results(timeout=timeout)

    def exceptions(self) -> list[BaseException | None]:
        """Per-sub-task exceptions (None where successful); blocks on all."""
        return [f.exception() for f in self._futures]

    def successful_results(self) -> list[Any]:
        """Results of the sub-tasks that succeeded, in order; blocks on all."""
        out = []
        for f in self._futures:
            if f.exception() is None:
                out.append(f.result())
        return out

    def reduce(self, op: Any, initial: Any = None) -> Any:
        """Fold results left-to-right with ``op`` (deterministic order)."""
        results = self.results()
        it = iter(results)
        acc = initial if initial is not None else next(it)
        for value in it:
            acc = op(acc, value)
        return acc

    def __repr__(self) -> str:
        return f"MultiTaskFuture({self.name!r}, {self.completed_count()}/{len(self)})"
