"""The sequential/parallel polymorphic-switch idiom.

Paper §V-B: "students took advantage of fundamental inheritance and
encapsulation features of object-oriented languages, allowing the
programmer to elegantly alternate between parallel and sequential
functionality."  This module captures that contribution as a small
template-method framework: an algorithm subclasses
:class:`Parallelizable`, implements ``run_sequential`` and
``run_parallel``, and callers pick the strategy per call site (or let a
threshold decide).
"""

from __future__ import annotations

import abc
from typing import Generic, TypeVar

from repro.ptask.runtime import ParallelTaskRuntime

__all__ = ["Parallelizable"]

In = TypeVar("In")
Out = TypeVar("Out")


class Parallelizable(abc.ABC, Generic[In, Out]):
    """Template for algorithms with sequential and parallel variants.

    Subclasses implement both variants; ``__call__`` dispatches:

    * ``mode="sequential"`` / ``mode="parallel"`` — explicit choice;
    * ``mode="auto"`` — parallel iff :meth:`problem_size` reaches
      ``parallel_threshold`` (the encapsulated granularity decision).

    >>> class Sum(Parallelizable[list, int]):
    ...     def run_sequential(self, xs): return sum(xs)
    ...     def run_parallel(self, xs):
    ...         mid = len(xs) // 2
    ...         left = self.runtime.spawn(sum, xs[:mid])
    ...         return left.result() + sum(xs[mid:])
    """

    parallel_threshold: int = 1024

    def __init__(self, runtime: ParallelTaskRuntime, parallel_threshold: int | None = None) -> None:
        self.runtime = runtime
        if parallel_threshold is not None:
            if parallel_threshold < 0:
                raise ValueError("parallel_threshold must be >= 0")
            self.parallel_threshold = parallel_threshold

    @abc.abstractmethod
    def run_sequential(self, problem: In) -> Out:
        """Solve the problem without spawning tasks."""

    @abc.abstractmethod
    def run_parallel(self, problem: In) -> Out:
        """Solve the problem using the runtime's task parallelism."""

    def problem_size(self, problem: In) -> int:
        """Size measure for ``mode="auto"``; default is ``len``."""
        try:
            return len(problem)  # type: ignore[arg-type]
        except TypeError:
            return self.parallel_threshold  # unsized problems go parallel

    def should_parallelize(self, problem: In) -> bool:
        return self.problem_size(problem) >= self.parallel_threshold

    def __call__(self, problem: In, mode: str = "auto") -> Out:
        if mode == "sequential":
            return self.run_sequential(problem)
        if mode == "parallel":
            return self.run_parallel(problem)
        if mode == "auto":
            if self.should_parallelize(problem):
                return self.run_parallel(problem)
            return self.run_sequential(problem)
        raise ValueError(f"unknown mode {mode!r}; expected sequential/parallel/auto")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(threshold={self.parallel_threshold})"
