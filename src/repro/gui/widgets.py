"""EDT-confined widgets.

The single-threaded rule of every real toolkit, made explicit and loud:
mutating a widget from any thread other than its EDT raises
``ThreadConfinementError``.  Several student projects' first bug is
exactly this, so the substrate teaches it by failing fast rather than
corrupting state quietly.

Widgets record their update history, which is how the tests (and the
bench harness) observe "interim results appeared while work ran".
"""

from __future__ import annotations

import threading
from typing import Any, Generic, TypeVar

from repro.gui.edt import EventDispatchThread

__all__ = ["ThreadConfinementError", "Widget", "Window", "Label", "ProgressBar", "ListView"]

T = TypeVar("T")


class ThreadConfinementError(RuntimeError):
    """A widget was mutated off its event-dispatch thread."""


class Widget:
    """Base widget: owns nothing but the confinement check and history."""

    def __init__(self, edt: EventDispatchThread | None, name: str = "widget") -> None:
        """``edt=None`` disables confinement (headless/unit-test mode)."""
        self._edt = edt
        self.name = name
        self._history: list[Any] = []
        self._history_lock = threading.Lock()

    def _assert_edt(self) -> None:
        if self._edt is not None and not self._edt.is_edt():
            raise ThreadConfinementError(
                f"widget {self.name!r} mutated off the EDT "
                "(use edt.invoke_later / runtime notify handlers)"
            )

    def _record(self, entry: Any) -> None:
        with self._history_lock:
            self._history.append(entry)

    @property
    def history(self) -> list[Any]:
        with self._history_lock:
            return list(self._history)

    @property
    def update_count(self) -> int:
        with self._history_lock:
            return len(self._history)


class Label(Widget):
    """A one-line text display."""

    def __init__(self, edt: EventDispatchThread | None, text: str = "", name: str = "label") -> None:
        super().__init__(edt, name)
        self._text = text

    @property
    def text(self) -> str:
        return self._text

    def set_text(self, text: str) -> None:
        self._assert_edt()
        self._text = text
        self._record(text)


class ProgressBar(Widget):
    """Bounded progress indicator."""

    def __init__(self, edt: EventDispatchThread | None, maximum: int, name: str = "progress") -> None:
        if maximum < 1:
            raise ValueError(f"maximum must be >= 1, got {maximum}")
        super().__init__(edt, name)
        self.maximum = maximum
        self._value = 0

    @property
    def value(self) -> int:
        return self._value

    @property
    def fraction(self) -> float:
        return self._value / self.maximum

    def set_value(self, value: int) -> None:
        self._assert_edt()
        if not 0 <= value <= self.maximum:
            raise ValueError(f"value {value} outside [0, {self.maximum}]")
        self._value = value
        self._record(value)

    def increment(self) -> None:
        self.set_value(self._value + 1)

    @property
    def complete(self) -> bool:
        return self._value >= self.maximum


class ListView(Widget, Generic[T]):
    """An appendable list of items (search results, thumbnails, ...)."""

    def __init__(self, edt: EventDispatchThread | None, name: str = "list") -> None:
        super().__init__(edt, name)
        self._items: list[T] = []

    def add_item(self, item: T) -> None:
        self._assert_edt()
        self._items.append(item)
        self._record(item)

    def clear(self) -> None:
        self._assert_edt()
        self._items.clear()
        self._record("<clear>")

    @property
    def items(self) -> list[T]:
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)


class Window(Widget):
    """Container tying widgets to one EDT; closing records the event."""

    def __init__(self, edt: EventDispatchThread | None, title: str = "window") -> None:
        super().__init__(edt, title)
        self.title = title
        self._widgets: list[Widget] = []
        self._closed = False

    def add(self, widget: Widget) -> Widget:
        self._widgets.append(widget)
        return widget

    def label(self, text: str = "", name: str = "label") -> Label:
        return self.add(Label(self._edt, text, name))  # type: ignore[return-value]

    def progress_bar(self, maximum: int, name: str = "progress") -> ProgressBar:
        return self.add(ProgressBar(self._edt, maximum, name))  # type: ignore[return-value]

    def list_view(self, name: str = "list") -> ListView:
        return self.add(ListView(self._edt, name))  # type: ignore[return-value]

    @property
    def widgets(self) -> list[Widget]:
        return list(self._widgets)

    def close(self) -> None:
        self._assert_edt()
        self._closed = True
        self._record("<close>")

    @property
    def closed(self) -> bool:
        return self._closed
