"""A real event-dispatch thread, Swing-style.

One dedicated thread drains a FIFO of runnables.  ``invoke_later``
enqueues and returns; ``invoke_and_wait`` blocks the caller until the
runnable has executed (and re-raises its exception there).  Calling
``invoke_and_wait`` *from* the EDT would self-deadlock, so it executes
inline instead — matching the pragmatics of real toolkits.

Instrumentation: per-event queue latency (enqueue → service start) is
recorded, because responsiveness — the latency a user's click would
see — is the measured quantity in the GUI projects.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.obs.live.registry import REGISTRY
from repro.obs.trace import TraceRecorder, resolve_recorder

__all__ = ["EventDispatchThread", "EdtStats"]

_STOP = object()


@dataclass
class EdtStats:
    events_processed: int = 0
    total_queue_latency: float = 0.0
    max_queue_latency: float = 0.0

    @property
    def mean_queue_latency(self) -> float:
        if self.events_processed == 0:
            return 0.0
        return self.total_queue_latency / self.events_processed


class EventDispatchThread:
    """The single UI thread; all widget mutation must happen here."""

    def __init__(self, name: str = "edt", trace: TraceRecorder | None = None) -> None:
        self.name = name
        #: observability (see :mod:`repro.obs`): queue latency histogram
        #: and a service span per event, so "was the UI responsive?" is
        #: readable straight off a trace.
        self.trace = resolve_recorder(trace)
        self._queue: list[tuple[Any, ...]] = []
        self._cond = threading.Condition()
        self._stats = EdtStats()
        self._stopped = False
        # Live observability: pending-event depth as a pull gauge, read
        # only at scrape time (see repro.obs.live.registry).
        self._queue_gauge = REGISTRY.register_gauge(f"{name}.queue_depth", lambda: len(self._queue))
        self._thread = threading.Thread(target=self._loop, name=name, daemon=True)
        self._thread.start()

    # -- dispatch ------------------------------------------------------------

    def invoke_later(self, fn: Callable[..., Any], *args: Any) -> None:
        """Enqueue ``fn(*args)`` for the EDT; returns immediately."""
        with self._cond:
            if self._stopped:
                raise RuntimeError(f"EDT {self.name!r} is stopped")
            self._queue.append((fn, args, time.monotonic(), None))
            self._cond.notify()

    def invoke_and_wait(self, fn: Callable[..., Any], *args: Any, timeout: float | None = 10.0) -> Any:
        """Run ``fn(*args)`` on the EDT and wait for its result."""
        if self.is_edt():
            return fn(*args)  # running it inline avoids self-deadlock
        done = threading.Event()
        box: dict[str, Any] = {}

        def wrapper() -> None:
            try:
                box["value"] = fn(*args)
            except BaseException as exc:  # noqa: BLE001 - transported to caller
                box["error"] = exc
            finally:
                done.set()

        self.invoke_later(wrapper)
        if not done.wait(timeout=timeout):
            raise TimeoutError(f"EDT did not run the task within {timeout}s")
        if "error" in box:
            raise box["error"]
        return box.get("value")

    def is_edt(self) -> bool:
        return threading.current_thread() is self._thread

    # -- lifecycle -----------------------------------------------------------------

    def drain(self, timeout: float = 10.0) -> None:
        """Block until everything currently queued has been processed."""
        self.invoke_and_wait(lambda: None, timeout=timeout)

    def stop(self) -> None:
        with self._cond:
            if self._stopped:
                return
            self._stopped = True
            self._queue.append((_STOP, (), time.monotonic(), None))
            self._cond.notify()
        self._thread.join(timeout=5.0)
        self._queue_gauge.dispose()

    @property
    def stats(self) -> EdtStats:
        return self._stats

    # -- the loop --------------------------------------------------------------------

    def _loop(self) -> None:
        handle = REGISTRY.register(self.name, role="edt")
        try:
            while True:
                with self._cond:
                    while not self._queue:
                        self._cond.wait(timeout=0.1)
                    fn, args, enqueued_at, _ = self._queue.pop(0)
                if fn is _STOP:
                    return
                latency = time.monotonic() - enqueued_at
                self._stats.events_processed += 1
                self._stats.total_queue_latency += latency
                self._stats.max_queue_latency = max(self._stats.max_queue_latency, latency)
                trace = self.trace
                event_name = getattr(fn, "__name__", "event")
                if trace.enabled:
                    trace.event("edt", event_name, phase="B", queue_latency=latency)
                    trace.observe("edt.queue_latency_seconds", latency)
                    trace.count("edt.events")
                live_prev = handle.begin_task(f"edt:{event_name}")
                try:
                    fn(*args)
                except Exception:  # noqa: BLE001
                    # A broken handler must not kill the UI thread; real
                    # toolkits log and continue, so do we.
                    import traceback

                    traceback.print_exc()
                finally:
                    handle.end_task(live_prev)
                    if trace.enabled:
                        trace.event("edt", event_name, phase="E")
        finally:
            REGISTRY.unregister(handle)

    def __enter__(self) -> "EventDispatchThread":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    def __repr__(self) -> str:
        return f"EventDispatchThread({self.name!r}, processed={self._stats.events_processed})"
