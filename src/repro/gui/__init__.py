"""A minimal GUI substrate: event-dispatch thread, widgets, responsiveness.

Projects 1, 4 and 7 are GUI applications whose whole point is that "the
GUI remains fully responsive" while parallel work proceeds, with interim
results appearing as they are found.  This package provides what those
projects need from Swing/Android, in two forms:

* a **real** :class:`~repro.gui.edt.EventDispatchThread` with
  ``invoke_later`` / ``invoke_and_wait`` and EDT-confined widgets
  (mutating a widget off the EDT raises — the classic toolkit rule made
  loud), used by the examples and correctness tests;
* a **virtual-time UI model** (:mod:`repro.gui.sim_ui`) that measures
  event-service latency when background jobs run on the EDT versus on a
  task pool — the deterministic version of the responsiveness demo, used
  by the project benches.
"""

from repro.gui.binding import bind_progress, bind_status_label
from repro.gui.edt import EventDispatchThread
from repro.gui.sim_ui import ResponsivenessReport, simulate_ui_scenario
from repro.gui.widgets import Label, ListView, ProgressBar, Widget, Window

__all__ = [
    "EventDispatchThread",
    "Widget",
    "Window",
    "Label",
    "ProgressBar",
    "ListView",
    "simulate_ui_scenario",
    "ResponsivenessReport",
    "bind_progress",
    "bind_status_label",
]
