"""Bindings from task progress to EDT-confined widgets.

The glue every GUI project writes by hand: as sub-tasks of a multi-task
complete, a progress bar advances — on the EDT, exactly once per task,
no matter which worker finished it.
"""

from __future__ import annotations

from typing import Callable

from repro.gui.edt import EventDispatchThread
from repro.gui.widgets import Label, ProgressBar
from repro.ptask.multitask import MultiTaskFuture

__all__ = ["bind_progress", "bind_status_label"]


def bind_progress(
    multi: MultiTaskFuture,
    bar: ProgressBar,
    edt: EventDispatchThread,
    on_complete: Callable[[], None] | None = None,
) -> None:
    """Advance ``bar`` on the EDT as each sub-task of ``multi`` finishes.

    The bar's maximum must cover ``len(multi)``.  ``on_complete`` (if
    given) runs on the EDT after the final increment.
    """
    if bar.maximum < len(multi):
        raise ValueError(
            f"progress bar maximum {bar.maximum} cannot hold {len(multi)} sub-tasks"
        )
    remaining = {"n": len(multi)}

    def advance() -> None:
        bar.increment()
        remaining["n"] -= 1
        if remaining["n"] == 0 and on_complete is not None:
            on_complete()

    if len(multi) == 0 and on_complete is not None:
        edt.invoke_later(on_complete)
        return
    for future in multi:
        future.add_done_callback(lambda _f: edt.invoke_later(advance))


def bind_status_label(
    multi: MultiTaskFuture, label: Label, edt: EventDispatchThread, template: str = "{done}/{total}"
) -> None:
    """Keep ``label`` showing ``done/total`` as sub-tasks complete."""
    total = len(multi)
    done = {"n": 0}

    def update() -> None:
        done["n"] += 1
        label.set_text(template.format(done=done["n"], total=total))

    edt.invoke_later(label.set_text, template.format(done=0, total=total))
    for future in multi:
        future.add_done_callback(lambda _f: edt.invoke_later(update))
