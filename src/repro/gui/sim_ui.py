"""Virtual-time responsiveness model: EDT-blocking vs task-pool designs.

The deterministic core of the GUI projects' headline claim.  A scenario
has background *jobs* (image scalings, file searches...) and periodic
*user events* (scrolls, clicks) needing quick service on the EDT.  Two
application designs are modelled:

* ``strategy="edt"`` — the naive sequential app: jobs run as EDT
  runnables, so user events queue behind them and latency explodes;
* ``strategy="pool"`` — the Parallel Task design: jobs run on a worker
  pool (one core is left to the UI), each completion posts only a tiny
  widget-update runnable to the EDT, so user events are served at once.

Everything runs on :mod:`repro.simkernel`, so the latency distributions
are exact and reproducible; the project benches sweep job sizes and core
counts over this model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Sequence

from repro.simkernel import Resource, Simulator, Store

__all__ = ["ResponsivenessReport", "simulate_ui_scenario"]

_STRATEGIES = ("edt", "pool")


@dataclass(frozen=True)
class ResponsivenessReport:
    """Latency and completion outcomes of one UI scenario."""

    strategy: str
    cores: int
    n_jobs: int
    jobs_makespan: float
    event_latencies: tuple[float, ...] = field(repr=False)

    @property
    def events_served(self) -> int:
        return len(self.event_latencies)

    @property
    def mean_latency(self) -> float:
        if not self.event_latencies:
            return 0.0
        return sum(self.event_latencies) / len(self.event_latencies)

    @property
    def max_latency(self) -> float:
        return max(self.event_latencies, default=0.0)

    @property
    def p95_latency(self) -> float:
        if not self.event_latencies:
            return 0.0
        ordered = sorted(self.event_latencies)
        return ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]

    def __str__(self) -> str:
        return (
            f"ResponsivenessReport({self.strategy}@{self.cores}c: jobs done in "
            f"{self.jobs_makespan:.3g}s, event latency mean={self.mean_latency:.4g}s "
            f"p95={self.p95_latency:.4g}s over {self.events_served} events)"
        )


def simulate_ui_scenario(
    job_costs: Sequence[float],
    *,
    cores: int = 4,
    strategy: str = "pool",
    event_interval: float = 0.05,
    event_service_cost: float = 0.002,
    update_cost: float = 0.001,
) -> ResponsivenessReport:
    """Run one scenario; see module docstring for the two strategies.

    ``job_costs`` are seconds of work per background job.  User events
    arrive every ``event_interval`` seconds until all jobs complete.
    """
    if strategy not in _STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; expected one of {_STRATEGIES}")
    if cores < 1:
        raise ValueError(f"cores must be >= 1, got {cores}")
    if not job_costs:
        raise ValueError("scenario needs at least one job")
    if any(c < 0 for c in job_costs):
        raise ValueError("job costs must be >= 0")

    sim = Simulator()
    edt_queue = Store(sim, name="edt-queue")
    latencies: list[float] = []
    remaining = [len(job_costs)]
    jobs_done = sim.event("jobs-done")
    jobs_finished_at = [0.0]

    def job_complete() -> None:
        remaining[0] -= 1
        if remaining[0] == 0:
            jobs_finished_at[0] = sim.now
            jobs_done.fire()

    def edt() -> Generator:
        while True:
            kind, enqueued_at = yield edt_queue.get()
            if kind == "stop":
                return
            if kind == "user":
                latencies.append(sim.now - enqueued_at)
                yield event_service_cost
            elif kind == "job":
                yield 0.0  # cost folded into the payload below
            elif kind == "update":
                yield update_cost

    # The EDT variant needs per-job costs on the EDT itself; model each
    # job as its own runnable carrying its cost.
    def edt_with_jobs(costs: dict[int, float]) -> Generator:
        while True:
            item = yield edt_queue.get()
            kind, payload = item[0], item[1]
            if kind == "stop":
                return
            if kind == "user":
                latencies.append(sim.now - payload)
                yield event_service_cost
            elif kind == "job":
                yield costs[payload]
                job_complete()
            elif kind == "update":
                yield update_cost

    if strategy == "edt":
        costs = dict(enumerate(float(c) for c in job_costs))
        sim.spawn(edt_with_jobs(costs), name="edt")
        for i in range(len(job_costs)):
            edt_queue.put(("job", i))
    else:
        sim.spawn(edt(), name="edt")
        workers = Resource(sim, capacity=max(1, cores - 1), name="pool")

        def job(cost: float) -> Generator:
            yield workers.acquire()
            yield cost
            workers.release()
            edt_queue.put(("update", sim.now))
            job_complete()

        for c in job_costs:
            sim.spawn(job(float(c)), name="job")

    def user_event_source() -> Generator:
        while not jobs_done.fired:
            edt_queue.put(("user", sim.now))
            yield event_interval
        edt_queue.put(("stop", sim.now))

    sim.spawn(user_event_source(), name="user-events")
    sim.run(max_steps=2_000_000)

    return ResponsivenessReport(
        strategy=strategy,
        cores=cores,
        n_jobs=len(job_costs),
        jobs_makespan=jobs_finished_at[0],
        event_latencies=tuple(latencies),
    )
