"""Project 4: search for a string (or regex) in the text files of a folder.

The brief: search in parallel without blocking the UI, displaying
(file, line-number) pairs *while the search is still in progress*.  The
search core here supports plain substrings and regular expressions, one
task per file (a Parallel Task multi-task), and streams matches through
the runtime's notify mechanism — which a GUI wires to a ListView via the
EDT (see the integration tests and the folder-search example).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable

from repro.apps.corpus import TextCorpus, TextFile
from repro.executor.base import Executor
from repro.ptask import ParallelTaskRuntime

__all__ = ["Match", "search_file", "FolderSearch", "search_cost"]

#: reference-seconds per line scanned
COST_PER_LINE = 1e-6


@dataclass(frozen=True)
class Match:
    """One hit: the (file, line-number) pair the UI displays."""

    path: str
    line_no: int  # 1-based, like grep
    line: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line_no}: {self.line}"


def _matcher(pattern: str, regex: bool) -> Callable[[str], bool]:
    if regex:
        compiled = re.compile(pattern)
        return lambda line: compiled.search(line) is not None
    return lambda line: pattern in line


def search_file(file: TextFile, pattern: str, regex: bool = False) -> list[Match]:
    """All matches in one file, in line order."""
    match = _matcher(pattern, regex)
    return [
        Match(path=file.path, line_no=i + 1, line=line)
        for i, line in enumerate(file.lines)
        if match(line)
    ]


def search_cost(file: TextFile) -> float:
    """Virtual cost of scanning ``file`` (proportional to its lines)."""
    return COST_PER_LINE * file.n_lines


class FolderSearch:
    """The search app: parallel over files, streaming interim matches."""

    def __init__(
        self,
        executor: Executor,
        on_match: Callable[[Match], None] | None = None,
        edt: object | None = None,
    ) -> None:
        self.executor = executor
        self.runtime = ParallelTaskRuntime(executor, edt=edt)
        self.on_match = on_match

    def search(
        self, corpus: TextCorpus, pattern: str | None = None, regex: bool = False
    ) -> list[Match]:
        """Search every file; returns all matches in (file, line) order.

        Matches are additionally streamed to ``on_match`` as each one is
        found (the still-in-progress display from the brief).
        """
        pattern = pattern if pattern is not None else corpus.needle

        def search_one(file: TextFile) -> list[Match]:
            self.executor.compute(search_cost(file))
            found = search_file(file, pattern, regex)
            for m in found:
                self.runtime.publish(m)
            return found

        mt = self.runtime.spawn_multi(
            search_one,
            list(corpus.files),
            notify=self.on_match,
        )
        out: list[Match] = []
        for per_file in mt.results():
            out.extend(per_file)
        return out
