"""Seeded synthetic data: images, text folders, PDFs, web pages.

The paper's workloads use real user data (a folder of photos, local
PDFs, live web pages).  These generators produce structurally equivalent
synthetic corpora — many independent items, skewed sizes, known planted
matches — from a single seed, so every experiment is reproducible and
self-contained (DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.rng import derive

__all__ = [
    "SyntheticImage",
    "make_image_folder",
    "TextFile",
    "TextCorpus",
    "make_text_corpus",
    "PdfDocument",
    "PdfCorpus",
    "make_pdf_corpus",
    "WebPage",
    "WebSite",
    "make_website",
]

_WORDS = (
    "parallel task pyjama thread core barrier lock queue future schedule "
    "student project research group auckland lecture seminar test report "
    "memory cache speedup amdahl gustafson quicksort kernel graph matrix"
).split()


# -- images (project 1) --------------------------------------------------------------


@dataclass
class SyntheticImage:
    """An image as a float array plus the metadata the workloads need."""

    name: str
    pixels: np.ndarray = field(repr=False)

    @property
    def width(self) -> int:
        return self.pixels.shape[1]

    @property
    def height(self) -> int:
        return self.pixels.shape[0]

    @property
    def n_pixels(self) -> int:
        return self.width * self.height


def make_image_folder(
    n_images: int,
    seed: int = 0,
    min_side: int = 16,
    max_side: int = 128,
    skew: float = 1.5,
) -> list[SyntheticImage]:
    """A 'folder' of images with power-law-ish mixed sizes.

    Mixed sizes matter: project 1's groups investigated "different image
    input sizes" and scheduling — skew is what makes schedules differ.
    """
    if n_images < 0:
        raise ValueError(f"n_images must be >= 0, got {n_images}")
    if not 1 <= min_side <= max_side:
        raise ValueError(f"need 1 <= min_side <= max_side, got {min_side}, {max_side}")
    rng = derive(seed, "images")
    images = []
    for i in range(n_images):
        # Pareto-ish size distribution clipped to the range.
        u = rng.random()
        side = int(min_side + (max_side - min_side) * (u**skew))
        w = max(min_side, side)
        h = max(min_side, int(side * rng.uniform(0.6, 1.4)))
        pixels = rng.random((h, w)).astype(np.float64)
        images.append(SyntheticImage(name=f"img_{i:04d}.png", pixels=pixels))
    return images


# -- text folder (project 4) --------------------------------------------------------


@dataclass(frozen=True)
class TextFile:
    path: str
    lines: tuple[str, ...]

    @property
    def n_lines(self) -> int:
        return len(self.lines)


@dataclass(frozen=True)
class TextCorpus:
    files: tuple[TextFile, ...]
    needle: str
    planted: int  # number of lines that contain the needle

    @property
    def total_lines(self) -> int:
        return sum(f.n_lines for f in self.files)


def make_text_corpus(
    n_files: int,
    seed: int = 0,
    lines_per_file: tuple[int, int] = (20, 200),
    words_per_line: tuple[int, int] = (4, 12),
    needle: str = "needle",
    hit_rate: float = 0.02,
    subfolders: int = 3,
) -> TextCorpus:
    """A folder tree of text files with ``needle`` planted at a known rate."""
    if not 0.0 <= hit_rate <= 1.0:
        raise ValueError(f"hit_rate must be in [0,1], got {hit_rate}")
    rng = derive(seed, "text-corpus")
    files = []
    planted = 0
    for i in range(n_files):
        sub = f"sub{int(rng.integers(0, max(1, subfolders)))}"
        n_lines = int(rng.integers(lines_per_file[0], lines_per_file[1] + 1))
        lines = []
        for _ in range(n_lines):
            n_words = int(rng.integers(words_per_line[0], words_per_line[1] + 1))
            words = [_WORDS[int(rng.integers(0, len(_WORDS)))] for _ in range(n_words)]
            if rng.random() < hit_rate:
                words[int(rng.integers(0, len(words)))] = needle
                planted += 1
            lines.append(" ".join(words))
        files.append(TextFile(path=f"{sub}/file_{i:04d}.txt", lines=tuple(lines)))
    return TextCorpus(files=tuple(files), needle=needle, planted=planted)


# -- PDFs (project 7) -----------------------------------------------------------------


@dataclass(frozen=True)
class PdfDocument:
    path: str
    pages: tuple[tuple[str, ...], ...]  # page -> lines

    @property
    def n_pages(self) -> int:
        return len(self.pages)


@dataclass(frozen=True)
class PdfCorpus:
    documents: tuple[PdfDocument, ...]
    query: str
    planted: int

    @property
    def total_pages(self) -> int:
        return sum(d.n_pages for d in self.documents)


def make_pdf_corpus(
    n_documents: int,
    seed: int = 0,
    pages_per_doc: tuple[int, int] = (2, 80),
    lines_per_page: int = 40,
    query: str = "quokka",  # deliberately outside the corpus vocabulary
    hit_rate: float = 0.01,
) -> PdfCorpus:
    """PDFs with *heavily skewed* page counts (a thesis next to a memo).

    The skew is the point: per-file parallelism strands one task on the
    600-page document while per-page parallelism balances — project 7's
    granularity finding.
    """
    rng = derive(seed, "pdf-corpus")
    docs = []
    planted = 0
    lo, hi = pages_per_doc
    for i in range(n_documents):
        u = rng.random()
        n_pages = int(lo + (hi - lo) * (u**3))  # cubic skew: few huge docs
        pages = []
        for _p in range(n_pages):
            lines = []
            for _l in range(lines_per_page):
                words = [_WORDS[int(rng.integers(0, len(_WORDS)))] for _ in range(8)]
                if rng.random() < hit_rate:
                    words[0] = query
                    planted += 1
                lines.append(" ".join(words))
            pages.append(tuple(lines))
        docs.append(PdfDocument(path=f"doc_{i:03d}.pdf", pages=tuple(pages)))
    return PdfCorpus(documents=tuple(docs), query=query, planted=planted)


# -- web pages (project 10) ---------------------------------------------------------


@dataclass(frozen=True)
class WebPage:
    url: str
    size_bytes: int
    server_latency: float  # seconds before the first byte


@dataclass(frozen=True)
class WebSite:
    pages: tuple[WebPage, ...]
    bandwidth_bytes_per_s: float  # shared downlink

    @property
    def total_bytes(self) -> int:
        return sum(p.size_bytes for p in self.pages)


def make_website(
    n_pages: int,
    seed: int = 0,
    latency_range: tuple[float, float] = (0.05, 0.5),
    size_range: tuple[int, int] = (5_000, 200_000),
    bandwidth_bytes_per_s: float = 2_000_000.0,
) -> WebSite:
    """Pages with lognormal-ish latencies and sizes on a shared downlink.

    Latency is per-connection dead time (hidden by concurrency);
    bandwidth is shared (not hidden) — their ratio locates project 10's
    optimal connection count.
    """
    rng = derive(seed, "website")
    pages = []
    for i in range(n_pages):
        latency = float(rng.uniform(*latency_range))
        size = int(rng.integers(size_range[0], size_range[1] + 1))
        pages.append(WebPage(url=f"https://example.org/page/{i}", size_bytes=size, server_latency=latency))
    return WebSite(pages=tuple(pages), bandwidth_bytes_per_s=bandwidth_bytes_per_s)
