"""Project 7: PDF searching at different granularities.

The brief: search a number of PDFs for a query, "investigating various
granularity and parameters to the parallelisation process (for example,
searching per page, per file, number of threads, etc)".  The corpus is
skew-heavy (one thesis among memos), which is exactly what makes the
granularity choice matter:

* ``per_file`` — one task per document: the 600-page document strands
  its task; speedup caps at total/biggest;
* ``per_page`` — one task per (document, page): near-perfect balance,
  at the price of many more task dispatches;
* ``per_chunk`` — pages grouped into fixed-size chunks: the compromise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.apps.corpus import PdfCorpus, PdfDocument
from repro.executor.base import Executor
from repro.ptask import ParallelTaskRuntime

__all__ = ["PageHit", "PdfSearcher", "GRANULARITIES", "page_cost"]

GRANULARITIES = ("per_file", "per_page", "per_chunk")

#: reference-seconds to scan one page (PDF text extraction is pricey)
COST_PER_PAGE = 5e-5


@dataclass(frozen=True)
class PageHit:
    path: str
    page: int  # 0-based page index
    count: int  # matches on that page


def page_cost(_page: tuple[str, ...]) -> float:
    """Virtual cost of scanning one page (constant per page)."""
    return COST_PER_PAGE


def _scan_page(doc: PdfDocument, page_index: int, query: str) -> PageHit | None:
    count = sum(line.count(query) for line in doc.pages[page_index])
    if count == 0:
        return None
    return PageHit(path=doc.path, page=page_index, count=count)


class PdfSearcher:
    """Search a PDF corpus at a chosen granularity."""

    def __init__(
        self,
        executor: Executor,
        on_hit: Callable[[PageHit], None] | None = None,
        edt: object | None = None,
    ) -> None:
        self.executor = executor
        self.runtime = ParallelTaskRuntime(executor, edt=edt)
        self.on_hit = on_hit

    def search(
        self, corpus: PdfCorpus, granularity: str = "per_page", chunk_pages: int = 8
    ) -> list[PageHit]:
        """All page hits, ordered by (document, page)."""
        if granularity not in GRANULARITIES:
            raise ValueError(f"unknown granularity {granularity!r}; expected one of {GRANULARITIES}")
        if chunk_pages < 1:
            raise ValueError(f"chunk_pages must be >= 1, got {chunk_pages}")
        query = corpus.query

        def scan_range(doc: PdfDocument, start: int, stop: int) -> list[PageHit]:
            self.executor.compute(COST_PER_PAGE * (stop - start))
            hits = []
            for p in range(start, stop):
                hit = _scan_page(doc, p, query)
                if hit is not None:
                    hits.append(hit)
                    self.runtime.publish(hit)
            return hits

        units: list[tuple[PdfDocument, int, int]] = []
        for doc in corpus.documents:
            if granularity == "per_file":
                units.append((doc, 0, doc.n_pages))
            elif granularity == "per_page":
                units.extend((doc, p, p + 1) for p in range(doc.n_pages))
            else:
                units.extend(
                    (doc, s, min(s + chunk_pages, doc.n_pages))
                    for s in range(0, doc.n_pages, chunk_pages)
                )

        # Cost is charged inside scan_range (compute), not via cost_fn —
        # charging both would double-count the work.
        mt = self.runtime.spawn_multi(
            lambda unit: scan_range(*unit),
            units,
            notify=self.on_hit,
        )
        out: list[PageHit] = []
        for hits in mt.results():
            out.extend(hits)
        return out

    @staticmethod
    def total_matches(hits: list[PageHit]) -> int:
        return sum(h.count for h in hits)
