"""Project 3: computational kernels parallelised with Pyjama.

The brief: implement basic algorithms ("usually in the form of some
nested loops") in parallel, comparing Pyjama against plain concurrency.
The paper names FFT, molecular dynamics, graph processing and linear
algebra — all four are here, each with a sequential reference, a
Pyjama ``parallel_for`` version, and an explicit cost model.
"""

from repro.apps.kernels.fft import fft, fft_parallel
from repro.apps.kernels.graphs import bfs_levels, bfs_levels_parallel, pagerank, pagerank_parallel
from repro.apps.kernels.linalg import jacobi, jacobi_parallel
from repro.apps.kernels.matmul import matmul_blocked, matmul_parallel
from repro.apps.kernels.md import LJSystem, md_step, md_step_parallel

__all__ = [
    "fft",
    "fft_parallel",
    "matmul_blocked",
    "matmul_parallel",
    "LJSystem",
    "md_step",
    "md_step_parallel",
    "bfs_levels",
    "bfs_levels_parallel",
    "pagerank",
    "pagerank_parallel",
    "jacobi",
    "jacobi_parallel",
]
