"""FFT kernel: iterative radix-2 Cooley–Tukey, from scratch.

The per-stage butterfly loops are independent, which is the parallel
structure: each of the log2(n) stages is a Pyjama ``parallel_for`` over
butterfly groups with a barrier between stages (implicit: the next
``parallel_for`` cannot start until the previous returned).
"""

from __future__ import annotations

import math

import numpy as np

from repro.executor.base import Executor
from repro.pyjama import Pyjama

__all__ = ["fft", "fft_parallel", "fft_cost"]

#: reference-seconds per butterfly
COST_PER_BUTTERFLY = 2e-7


def _bit_reverse_permute(x: np.ndarray) -> np.ndarray:
    n = len(x)
    bits = n.bit_length() - 1
    idx = np.zeros(n, dtype=np.int64)
    for i in range(n):
        rev = 0
        v = i
        for _ in range(bits):
            rev = (rev << 1) | (v & 1)
            v >>= 1
        idx[i] = rev
    return x[idx]


def _check_input(x: np.ndarray) -> np.ndarray:
    x = np.asarray(x, dtype=np.complex128)
    n = len(x)
    if n == 0 or n & (n - 1):
        raise ValueError(f"FFT length must be a power of two, got {n}")
    return x


def fft(x: np.ndarray, executor: Executor | None = None) -> np.ndarray:
    """Sequential iterative radix-2 FFT (the reference implementation)."""
    x = _check_input(x)
    n = len(x)
    out = _bit_reverse_permute(x).copy()
    half = 1
    while half < n:
        step = half * 2
        twiddles = np.exp(-2j * math.pi * np.arange(half) / step)
        for start in range(0, n, step):
            lo = out[start : start + half].copy()  # copy: writes below would alias the view
            hi = out[start + half : start + step] * twiddles
            out[start : start + half] = lo + hi
            out[start + half : start + step] = lo - hi
        if executor is not None:
            executor.compute(COST_PER_BUTTERFLY * (n // 2))
        half = step
    return out


def fft_parallel(
    x: np.ndarray, omp: Pyjama, schedule: str = "static", num_threads: int | None = None
) -> np.ndarray:
    """Pyjama FFT: each stage's butterfly groups as a ``parallel_for``."""
    x = _check_input(x)
    n = len(x)
    out = _bit_reverse_permute(x).copy()
    half = 1
    while half < n:
        step = half * 2
        twiddles = np.exp(-2j * math.pi * np.arange(half) / step)
        starts = list(range(0, n, step))

        def butterfly_group(start: int) -> None:
            lo = out[start : start + half].copy()  # copy: writes below would alias the view
            hi = out[start + half : start + step] * twiddles
            out[start : start + half] = lo + hi
            out[start + half : start + step] = lo - hi

        omp.parallel_for(
            starts,
            butterfly_group,
            schedule=schedule,
            num_threads=num_threads,
            cost_fn=lambda _s: COST_PER_BUTTERFLY * half,
            name=f"fft-stage{half}",
        )
        half = step
    return out


def fft_cost(n: int) -> float:
    """Total work of an n-point FFT under the cost model."""
    if n <= 1:
        return 0.0
    return COST_PER_BUTTERFLY * (n // 2) * int(math.log2(n))
