"""Graph-processing kernels: level-synchronous BFS and PageRank.

BFS expands frontiers with a ``parallel_for`` + ``set`` object reduction
(a project-5 reduction earning its keep); PageRank is the classic
iterate-until-converged nested loop with a ``max`` reduction for the
convergence check.  Graphs are plain adjacency dicts; ``random_graph``
uses networkx for generation only.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.executor.base import Executor
from repro.pyjama import Pyjama

__all__ = ["random_graph", "bfs_levels", "bfs_levels_parallel", "pagerank", "pagerank_parallel"]

#: reference-seconds per traversed edge (pointer chase + membership check)
COST_PER_EDGE = 5e-7


def random_graph(n: int, avg_degree: float = 4.0, seed: int = 0) -> dict[int, list[int]]:
    """Connected-ish undirected random graph as an adjacency dict."""
    p = min(1.0, avg_degree / max(1, n - 1))
    g = nx.gnp_random_graph(n, p, seed=seed)
    # ensure node 0 reaches something even in sparse draws
    for i in range(1, min(n, 3)):
        g.add_edge(0, i)
    return {node: sorted(g.neighbors(node)) for node in g.nodes}


def bfs_levels(adj: dict[int, list[int]], source: int, executor: Executor | None = None) -> dict[int, int]:
    """Sequential level-synchronous BFS; returns node -> level."""
    if source not in adj:
        raise KeyError(f"source {source!r} not in graph")
    levels = {source: 0}
    frontier = [source]
    level = 0
    while frontier:
        level += 1
        edges = 0
        nxt: set[int] = set()
        for u in frontier:
            edges += len(adj[u])
            for v in adj[u]:
                if v not in levels:
                    nxt.add(v)
        if executor is not None:
            executor.compute(COST_PER_EDGE * edges)
        for v in nxt:
            levels[v] = level
        frontier = sorted(nxt)
    return levels


def bfs_levels_parallel(
    adj: dict[int, list[int]],
    source: int,
    omp: Pyjama,
    num_threads: int | None = None,
    chunk_size: int = 8,
) -> dict[int, int]:
    """Parallel BFS: each level's frontier workshared, next frontier via
    a ``set`` reduction.  ``chunk_size`` batches frontier nodes per task
    (per-node tasks would drown small frontiers in dispatch overhead)."""
    if source not in adj:
        raise KeyError(f"source {source!r} not in graph")
    levels = {source: 0}
    frontier = [source]
    level = 0
    while frontier:
        level += 1

        def expand(u: int) -> set[int]:
            return {v for v in adj[u] if v not in levels}

        nxt = omp.parallel_for(
            frontier,
            expand,
            schedule="dynamic",
            chunk_size=chunk_size,
            num_threads=num_threads,
            reduction="set",
            cost_fn=lambda u: COST_PER_EDGE * max(1, len(adj[u])),
            name=f"bfs-l{level}",
        )
        for v in nxt:
            levels[v] = level
        frontier = sorted(nxt)
    return levels


def pagerank(
    adj: dict[int, list[int]],
    damping: float = 0.85,
    tol: float = 1e-8,
    max_iters: int = 100,
    executor: Executor | None = None,
) -> dict[int, float]:
    """Sequential PageRank on an undirected adjacency dict."""
    nodes = sorted(adj)
    n = len(nodes)
    rank = {u: 1.0 / n for u in nodes}
    for _ in range(max_iters):
        new = {}
        for u in nodes:
            incoming = sum(rank[v] / max(1, len(adj[v])) for v in adj[u])
            new[u] = (1.0 - damping) / n + damping * incoming
        if executor is not None:
            executor.compute(COST_PER_EDGE * sum(len(adj[u]) for u in nodes))
        delta = max(abs(new[u] - rank[u]) for u in nodes)
        rank = new
        if delta < tol:
            break
    return rank


def pagerank_parallel(
    adj: dict[int, list[int]],
    omp: Pyjama,
    damping: float = 0.85,
    tol: float = 1e-8,
    max_iters: int = 100,
    num_threads: int | None = None,
) -> dict[int, float]:
    """Parallel PageRank: node loop workshared; the per-node results come
    back through a ``dict`` reduction and the convergence delta through a
    second pass ``max`` reduction."""
    nodes = sorted(adj)
    n = len(nodes)
    rank = {u: 1.0 / n for u in nodes}
    for _ in range(max_iters):

        def relax(u: int) -> dict[int, float]:
            incoming = sum(rank[v] / max(1, len(adj[v])) for v in adj[u])
            return {u: (1.0 - damping) / n + damping * incoming}

        new = omp.parallel_for(
            nodes,
            relax,
            schedule="static",
            num_threads=num_threads,
            reduction="dict",
            cost_fn=lambda u: COST_PER_EDGE * max(1, len(adj[u])),
            name="pagerank",
        )
        delta = omp.parallel_for(
            nodes,
            lambda u: abs(new[u] - rank[u]),
            schedule="static",
            num_threads=num_threads,
            reduction="max",
            name="pagerank-delta",
        )
        rank = new
        if delta < tol:
            break
    return rank
