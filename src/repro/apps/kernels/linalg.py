"""Linear-algebra kernel: Jacobi iteration for Ax = b.

The classic iterative stencil-ish loop: every row update is independent
within a sweep (Jacobi's defining property), so the row loop is a
``parallel_for`` and the residual check a ``max`` reduction.
"""

from __future__ import annotations

import numpy as np

from repro.executor.base import Executor
from repro.pyjama import Pyjama
from repro.util.rng import derive

__all__ = ["diagonally_dominant_system", "jacobi", "jacobi_parallel"]

#: reference-seconds per row relaxation of an n-column system
COST_PER_ROW_ELEMENT = 2e-9


def diagonally_dominant_system(n: int, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """A random strictly diagonally dominant system (Jacobi converges)."""
    rng = derive(seed, "jacobi-system")
    a = rng.uniform(-1.0, 1.0, size=(n, n))
    a[np.diag_indices(n)] = np.abs(a).sum(axis=1) + 1.0
    b = rng.uniform(-1.0, 1.0, size=n)
    return a, b


def jacobi(
    a: np.ndarray,
    b: np.ndarray,
    tol: float = 1e-10,
    max_iters: int = 500,
    executor: Executor | None = None,
) -> tuple[np.ndarray, int]:
    """Sequential Jacobi; returns (solution, iterations used)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    n = len(b)
    x = np.zeros(n)
    diag = np.diag(a)
    off = a - np.diagflat(diag)
    for it in range(1, max_iters + 1):
        x_new = (b - off @ x) / diag
        if executor is not None:
            executor.compute(COST_PER_ROW_ELEMENT * n * n)
        if np.max(np.abs(x_new - x)) < tol:
            return x_new, it
        x = x_new
    return x, max_iters


def jacobi_parallel(
    a: np.ndarray,
    b: np.ndarray,
    omp: Pyjama,
    tol: float = 1e-10,
    max_iters: int = 500,
    num_threads: int | None = None,
    block: int = 16,
) -> tuple[np.ndarray, int]:
    """Pyjama Jacobi: row blocks workshared, residual via max reduction."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    n = len(b)
    x = np.zeros(n)
    diag = np.diag(a)
    off = a - np.diagflat(diag)
    blocks = list(range(0, n, block))
    for it in range(1, max_iters + 1):
        x_new = np.zeros(n)

        def rows(i0: int) -> float:
            i1 = min(i0 + block, n)
            x_new[i0:i1] = (b[i0:i1] - off[i0:i1, :] @ x) / diag[i0:i1]
            return float(np.max(np.abs(x_new[i0:i1] - x[i0:i1])))

        delta = omp.parallel_for(
            blocks,
            rows,
            schedule="static",
            num_threads=num_threads,
            reduction="max",
            cost_fn=lambda i0: COST_PER_ROW_ELEMENT * (min(i0 + block, n) - i0) * n,
            name="jacobi",
        )
        x = x_new
        if delta < tol:
            return x, it
    return x, max_iters
