"""Dense matrix multiply: blocked, parallel over row panels.

The canonical nested-loop kernel.  The parallel version distributes row
panels with a Pyjama ``parallel_for``; the cost model charges 2*n
flops' worth per output element, so virtual-time speedups reflect the
O(n^3) work.
"""

from __future__ import annotations

import numpy as np

from repro.executor.base import Executor
from repro.pyjama import Pyjama

__all__ = ["matmul_blocked", "matmul_parallel", "matmul_tasks", "matmul_cost"]

#: reference-seconds per fused multiply-add
COST_PER_FLOP = 1e-9


def _check(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"incompatible shapes {a.shape} x {b.shape}")
    return a, b


def matmul_cost(m: int, k: int, n: int) -> float:
    """Work of an (m x k) @ (k x n) multiply under the cost model."""
    return COST_PER_FLOP * 2.0 * m * k * n


def matmul_blocked(
    a: np.ndarray, b: np.ndarray, block: int = 32, executor: Executor | None = None
) -> np.ndarray:
    """Sequential blocked multiply (the reference; real NumPy per block)."""
    a, b = _check(a, b)
    m, k = a.shape
    _, n = b.shape
    out = np.zeros((m, n))
    for i0 in range(0, m, block):
        i1 = min(i0 + block, m)
        for j0 in range(0, n, block):
            j1 = min(j0 + block, n)
            acc = np.zeros((i1 - i0, j1 - j0))
            for k0 in range(0, k, block):
                k1 = min(k0 + block, k)
                acc += a[i0:i1, k0:k1] @ b[k0:k1, j0:j1]
            out[i0:i1, j0:j1] = acc
        if executor is not None:
            executor.compute(matmul_cost(i1 - i0, k, n))
    return out


def matmul_parallel(
    a: np.ndarray,
    b: np.ndarray,
    omp: Pyjama,
    block: int = 32,
    schedule: str = "static",
    num_threads: int | None = None,
) -> np.ndarray:
    """Pyjama multiply: row panels distributed across the team."""
    a, b = _check(a, b)
    m, k = a.shape
    _, n = b.shape
    out = np.zeros((m, n))
    panels = list(range(0, m, block))

    def panel(i0: int) -> None:
        i1 = min(i0 + block, m)
        out[i0:i1, :] = a[i0:i1, :] @ b

    omp.parallel_for(
        panels,
        panel,
        schedule=schedule,
        num_threads=num_threads,
        cost_fn=lambda i0: matmul_cost(min(i0 + block, m) - i0, k, n),
        name="matmul",
    )
    return out


def _panel_product(a_panel: np.ndarray, b: np.ndarray) -> np.ndarray:
    """One row panel of the product — module-level so workers can import it."""
    return a_panel @ b


def matmul_tasks(a: np.ndarray, b: np.ndarray, executor: Executor, block: int = 64) -> np.ndarray:
    """Flat task-per-row-panel multiply runnable on *any* backend.

    Unlike :func:`matmul_parallel` (whose Pyjama closure captures the
    output array, tying it to shared-memory threads), every task here is
    a pure function of picklable array arguments — so the same call runs
    on ``inline``, ``threads``, ``sim`` *and* the out-of-process
    ``processes`` backend, where ``b`` ships to the workers once through
    the shared-memory plane and each panel product comes back the same
    way.  This is the kernel the real-vs-simulated speedup bench runs.
    """
    a, b = _check(a, b)
    m, k = a.shape
    _, n = b.shape
    futures = [
        executor.submit(
            _panel_product,
            a[i0:min(i0 + block, m), :],
            b,
            cost=matmul_cost(min(i0 + block, m) - i0, k, n),
            name=f"panel[{i0}]",
        )
        for i0 in range(0, m, block)
    ]
    return np.vstack([f.result() for f in futures])
