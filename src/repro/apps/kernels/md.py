"""Molecular dynamics kernel: Lennard-Jones N-body step.

All-pairs force computation (O(n^2)) is the classic MD teaching kernel.
The parallel version splits the particle loop with ``parallel_for`` and
obtains the potential energy through a ``"+"`` reduction — exercising
both worksharing and reductions, which is why the course liked it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.executor.base import Executor
from repro.pyjama import Pyjama
from repro.util.rng import derive

__all__ = ["LJSystem", "md_step", "md_step_parallel", "md_cost"]

#: reference-seconds per pair interaction
COST_PER_PAIR = 5e-9


@dataclass
class LJSystem:
    """Particle positions/velocities in a cubic periodic box."""

    positions: np.ndarray
    velocities: np.ndarray
    box: float
    epsilon: float = 1.0
    sigma: float = 1.0

    @classmethod
    def random(cls, n: int, box: float = 10.0, seed: int = 0) -> "LJSystem":
        rng = derive(seed, "md-system")
        return cls(
            positions=rng.random((n, 3)) * box,
            velocities=rng.normal(0.0, 0.1, size=(n, 3)),
            box=box,
        )

    @property
    def n(self) -> int:
        return len(self.positions)


def _forces_on(system: LJSystem, i: int) -> tuple[np.ndarray, float]:
    """Force on particle ``i`` and its half-share of potential energy."""
    pos = system.positions
    delta = pos[i] - pos  # (n, 3)
    delta -= system.box * np.round(delta / system.box)  # minimum image
    r2 = np.einsum("ij,ij->i", delta, delta)
    r2[i] = np.inf  # no self-interaction
    inv_r2 = (system.sigma**2) / r2
    inv_r6 = inv_r2**3
    # F = 24 eps (2 r^-12 - r^-6) / r^2 * delta
    coeff = 24.0 * system.epsilon * (2.0 * inv_r6**2 - inv_r6) / r2
    force = (coeff[:, None] * delta).sum(axis=0)
    energy = 2.0 * system.epsilon * (inv_r6**2 - inv_r6).sum()  # half of 4eps
    return force, float(energy)


def md_cost(n: int) -> float:
    """Work of one step: n*(n-1) pair interactions' worth."""
    return COST_PER_PAIR * n * n


def md_step(system: LJSystem, dt: float = 1e-3, executor: Executor | None = None) -> float:
    """One velocity-Verlet-ish step in place; returns potential energy."""
    n = system.n
    forces = np.zeros((n, 3))
    energy = 0.0
    for i in range(n):
        f, e = _forces_on(system, i)
        forces[i] = f
        energy += e
    if executor is not None:
        executor.compute(md_cost(n))
    system.velocities += dt * forces
    system.positions += dt * system.velocities
    system.positions %= system.box
    return energy


def md_step_parallel(
    system: LJSystem,
    omp: Pyjama,
    dt: float = 1e-3,
    schedule: str = "static",
    num_threads: int | None = None,
) -> float:
    """Parallel step: particle loop workshared, energy via '+' reduction."""
    n = system.n
    forces = np.zeros((n, 3))

    def particle(i: int) -> float:
        f, e = _forces_on(system, i)
        forces[i] = f
        return e

    energy = omp.parallel_for(
        list(range(n)),
        particle,
        schedule=schedule,
        num_threads=num_threads,
        reduction="+",
        cost_fn=lambda _i: COST_PER_PAIR * n,
        name="md-forces",
    )
    system.velocities += dt * forces
    system.positions += dt * system.velocities
    system.positions %= system.box
    return float(energy)
