"""Project 2: parallel quicksort, three ways.

The brief: implement parallel quicksort "using object-oriented language
support" in three versions — Parallel Task, Pyjama, and standard
threads/concurrency classes.  All three live here, over the same
partition step, plus the sequential baseline:

* ``sequential`` — classic in-place-ish quicksort (reference);
* ``ptask`` — divide-and-conquer on the Parallel Task runtime with a
  spawn-depth cutoff (the idiomatic tasking version);
* ``pyjama`` — OpenMP-style: recursion expressed with nested *sections*
  (the way OpenMP programs parallelised quicksort before `task`);
* ``threads`` — raw executor submits with explicit futures (the
  "standard Java threads and concurrency classes" analogue).

Cost model: partitioning n elements costs ``COST_PER_ELEMENT * n``,
charged where the work happens, so virtual-time runs price the whole
recursion tree correctly (including its sequential-partition prefix —
why quicksort's speedup is sublinear, a lesson the bench shows).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.executor.base import Executor
from repro.ptask import ParallelTaskRuntime
from repro.pyjama import Pyjama

__all__ = ["quicksort", "quicksort_chunks", "VARIANTS", "COST_PER_ELEMENT"]

COST_PER_ELEMENT = 5e-8
VARIANTS = ("sequential", "ptask", "pyjama", "threads")

#: below this size, recursion stays sequential in the parallel variants
DEFAULT_CUTOFF = 64


def _partition(executor: Executor, values: list) -> tuple[list, list, list]:
    """Three-way partition around the middle element; charges its cost."""
    executor.compute(COST_PER_ELEMENT * len(values))
    pivot = values[len(values) // 2]
    less = [v for v in values if v < pivot]
    equal = [v for v in values if v == pivot]
    greater = [v for v in values if v > pivot]
    return less, equal, greater


def _sequential(executor: Executor, values: list) -> list:
    if len(values) <= 1:
        if values:
            executor.compute(COST_PER_ELEMENT)
        return list(values)
    less, equal, greater = _partition(executor, values)
    return _sequential(executor, less) + equal + _sequential(executor, greater)


def _ptask(rt: ParallelTaskRuntime, values: list, cutoff: int) -> list:
    if len(values) <= cutoff:
        return _sequential(rt.executor, values)
    less, equal, greater = _partition(rt.executor, values)
    left = rt.spawn(_ptask, rt, less, cutoff, name="qsort-left")
    right = _ptask(rt, greater, cutoff)  # current task takes one side itself
    return left.result() + equal + right


def _pyjama(omp: Pyjama, values: list, cutoff: int) -> list:
    if len(values) <= cutoff:
        return _sequential(omp.executor, values)
    less, equal, greater = _partition(omp.executor, values)
    parts = omp.sections(
        [
            lambda: _pyjama(omp, less, cutoff),
            lambda: _pyjama(omp, greater, cutoff),
        ],
        num_threads=2,
    )
    return parts[0] + equal + parts[1]


def _threads(executor: Executor, values: list, cutoff: int) -> list:
    if len(values) <= cutoff:
        return _sequential(executor, values)
    less, equal, greater = _partition(executor, values)
    left_future = executor.submit(_threads, executor, less, cutoff, name="qsort-thread")
    right = _threads(executor, greater, cutoff)
    return left_future.result() + equal + right


def quicksort(
    executor: Executor,
    values: Sequence,
    variant: str = "ptask",
    cutoff: int = DEFAULT_CUTOFF,
) -> list:
    """Sort ``values`` ascending with the chosen variant.

    All variants return identical results; they differ in how the
    recursion is expressed and scheduled — which is the experiment.
    """
    if variant not in VARIANTS:
        raise ValueError(f"unknown variant {variant!r}; expected one of {VARIANTS}")
    if cutoff < 1:
        raise ValueError(f"cutoff must be >= 1, got {cutoff}")
    data = list(values)
    if variant == "sequential":
        return _sequential(executor, data)
    if variant == "ptask":
        return _ptask(ParallelTaskRuntime(executor), data, cutoff)
    if variant == "pyjama":
        return _pyjama(Pyjama(executor), data, cutoff)
    return _threads(executor, data, cutoff)


def _sort_bucket(bucket: np.ndarray) -> np.ndarray:
    """Sort one samplesort bucket — module-level so workers can import it."""
    return np.sort(np.asarray(bucket), kind="quicksort")


def quicksort_chunks(executor: Executor, values: Sequence, chunks: int | None = None) -> np.ndarray:
    """Flat parallel samplesort: one independent bucket-sort task per chunk.

    The recursive variants above pass the executor *into* their task
    bodies for nested spawns, which only works when tasks share the
    submitting process.  This variant decomposes flat instead — sampled
    pivots split the input into ``chunks`` disjoint buckets, each bucket
    sorts as one self-contained task, and the sorted buckets concatenate
    in pivot order — so it runs unchanged on every backend, including
    out-of-process workers (buckets travel through the shared-memory
    plane).  Returns a sorted ``ndarray``; it is *not* a new
    ``quicksort`` variant because the golden-output tests pin
    :data:`VARIANTS`.
    """
    data = np.asarray(values)
    if data.ndim != 1:
        raise ValueError(f"expected a 1-d sequence, got shape {data.shape}")
    parts = chunks if chunks is not None else max(1, executor.cores)
    if parts < 1:
        raise ValueError(f"chunks must be >= 1, got {parts}")
    if parts == 1 or len(data) <= parts:
        executor.compute(COST_PER_ELEMENT * len(data))
        return np.sort(data, kind="quicksort")
    # Deterministic pivots: an evenly strided sample stands in for the
    # classic random sample, keeping runs byte-reproducible.
    sample = np.sort(data[:: max(1, len(data) // (parts * 32))])
    pivot_at = np.linspace(0, len(sample) - 1, parts + 1).astype(int)[1:-1]
    pivots = sample[pivot_at]
    which = np.searchsorted(pivots, data, side="right")
    executor.compute(COST_PER_ELEMENT * len(data))  # the partition pass
    futures = [
        executor.submit(
            _sort_bucket,
            data[which == i],
            cost=COST_PER_ELEMENT * max(1, int(np.count_nonzero(which == i))),
            name=f"bucket[{i}]",
        )
        for i in range(parts)
    ]
    return np.concatenate([f.result() for f in futures])


def random_array(n: int, seed: int = 0) -> list[int]:
    """The workload generator: a large array of numbers to sort."""
    from repro.util.rng import derive

    rng = derive(seed, "quicksort-input")
    return rng.integers(0, max(1, n * 10), size=n).tolist()
