"""Project 10: fast web access through concurrent connections.

The brief: download a large number of web pages as quickly as possible;
"the question arises how many connections should be opened at the same
time".  The network is simulated on :mod:`repro.simkernel` (DESIGN.md
§2): each fetch pays a per-connection *server latency* (dead time,
hidden by concurrency) and then streams its bytes over a *shared
downlink* (bandwidth, not hidden).  The optimum connection count is
where accumulated latency-hiding meets bandwidth saturation — the
crossover the bench sweeps.

The model matches the asynchronous-communication claim in the brief:
latency-bound workloads want many connections; bandwidth-bound ones
plateau almost immediately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.apps.corpus import WebPage, WebSite
from repro.simkernel import Resource, Simulator

__all__ = ["FetchReport", "fetch_all", "sweep_connections"]


@dataclass(frozen=True)
class FetchReport:
    """Outcome of downloading a whole site with k connections."""

    connections: int
    n_pages: int
    total_bytes: int
    makespan: float
    mean_page_time: float

    @property
    def throughput_bytes_per_s(self) -> float:
        if self.makespan == 0:
            return 0.0
        return self.total_bytes / self.makespan


def fetch_all(site: WebSite, connections: int) -> FetchReport:
    """Download every page using ``connections`` concurrent connections.

    Bandwidth sharing is modelled in aggregate: a transfer's streaming
    time is its size over an equal share of the downlink, where the
    share is the number of connections concurrently *streaming* (dead
    latency time does not consume bandwidth).
    """
    if connections < 1:
        raise ValueError(f"connections must be >= 1, got {connections}")
    if not site.pages:
        raise ValueError("site has no pages")

    sim = Simulator()
    slots = Resource(sim, capacity=connections, name="connections")
    streaming = {"n": 0}
    page_times: list[float] = []

    def fetch(page: WebPage) -> Generator:
        start = sim.now
        yield slots.acquire()
        # dead time: server latency (no bandwidth consumed)
        yield page.server_latency
        # streaming: pay for the bytes in bandwidth-share-sized slices
        streaming["n"] += 1
        remaining = float(page.size_bytes)
        slice_bytes = 16_384.0
        while remaining > 0:
            share = site.bandwidth_bytes_per_s / max(1, streaming["n"])
            chunk = min(slice_bytes, remaining)
            yield chunk / share
            remaining -= chunk
        streaming["n"] -= 1
        slots.release()
        page_times.append(sim.now - start)

    for page in site.pages:
        sim.spawn(fetch(page), name=page.url)
    sim.run(max_steps=5_000_000)

    return FetchReport(
        connections=connections,
        n_pages=len(site.pages),
        total_bytes=site.total_bytes,
        makespan=sim.now,
        mean_page_time=sum(page_times) / len(page_times),
    )


def sweep_connections(site: WebSite, counts: list[int]) -> list[FetchReport]:
    """Fetch the same site at each connection count (the project's sweep)."""
    return [fetch_all(site, k) for k in counts]


def optimal_connections(reports: list[FetchReport]) -> int:
    """The connection count with the smallest makespan (ties: fewest)."""
    if not reports:
        raise ValueError("no reports to compare")
    best = min(reports, key=lambda r: (r.makespan, r.connections))
    return best.connections
