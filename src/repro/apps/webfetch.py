"""Project 10: fast web access through concurrent connections.

The brief: download a large number of web pages as quickly as possible;
"the question arises how many connections should be opened at the same
time".  The network is simulated on :mod:`repro.simkernel` (DESIGN.md
§2): each fetch pays a per-connection *server latency* (dead time,
hidden by concurrency) and then streams its bytes over a *shared
downlink* (bandwidth, not hidden).  The optimum connection count is
where accumulated latency-hiding meets bandwidth saturation — the
crossover the bench sweeps.

The model matches the asynchronous-communication claim in the brief:
latency-bound workloads want many connections; bandwidth-bound ones
plateau almost immediately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.apps.corpus import WebPage, WebSite
from repro.obs.trace import current_recorder
from repro.resilience.faults import FaultPlan, resolve_faults
from repro.resilience.retry import RetryPolicy
from repro.simkernel import Resource, Simulator

__all__ = ["FetchError", "FetchReport", "fetch_all", "sweep_connections", "optimal_connections"]


class FetchError(RuntimeError):
    """A page download failed (all retry attempts exhausted)."""


@dataclass(frozen=True)
class FetchReport:
    """Outcome of downloading a whole site with k connections."""

    connections: int
    n_pages: int
    total_bytes: int
    makespan: float
    mean_page_time: float
    #: fetch attempts that were retried after an injected failure
    retries: int = 0
    #: injected per-attempt failures encountered (see FaultPlan.failure_rate)
    faults: int = 0

    @property
    def throughput_bytes_per_s(self) -> float:
        if self.makespan == 0:
            return 0.0
        return self.total_bytes / self.makespan


def fetch_all(
    site: WebSite,
    connections: int,
    faults: FaultPlan | None = None,
    retry: RetryPolicy | None = None,
) -> FetchReport:
    """Download every page using ``connections`` concurrent connections.

    Bandwidth sharing is modelled in aggregate: a transfer's streaming
    time is its size over an equal share of the downlink, where the
    share is the number of connections concurrently *streaming* (dead
    latency time does not consume bandwidth).

    Fault semantics: under a :class:`~repro.resilience.FaultPlan`
    (explicit, or ambient via :func:`repro.resilience.use_faults`) each
    attempt may fail after its server latency and may draw a latency
    spike — both pure functions of ``(seed, url, attempt)``, so a chaos
    run is exactly reproducible.  A failed attempt releases its
    connection slot, backs off per ``retry`` (default: a policy seeded
    from the plan) in *virtual* time, and reconnects.  Exhausted pages
    raise :class:`FetchError` once the simulation completes; pass
    ``retry=RetryPolicy(max_attempts=1)`` to observe the no-retry
    behaviour.
    """
    if connections < 1:
        raise ValueError(f"connections must be >= 1, got {connections}")
    if not site.pages:
        raise ValueError("site has no pages")
    faults = resolve_faults(faults)
    if faults is not None and not faults.active:
        faults = None
    if retry is None and faults is not None:
        retry = RetryPolicy(
            max_attempts=4, base_delay=0.2, multiplier=2.0, max_delay=5.0, seed=faults.seed
        )
    trace = current_recorder()

    sim = Simulator()
    slots = Resource(sim, capacity=connections, name="connections")
    streaming = {"n": 0}
    page_times: list[float] = []
    counters = {"retries": 0, "faults": 0}
    errors: list[FetchError] = []

    def fetch(page: WebPage) -> Generator:
        start = sim.now
        attempt = 1
        while True:
            yield slots.acquire()
            # dead time: server latency (no bandwidth consumed)
            latency = page.server_latency
            if faults is not None:
                latency *= faults.latency_multiplier(page.url, attempt)
            yield latency
            if faults is not None and faults.should_fail(page.url, attempt):
                # Connection-level failure: give the slot back, back off
                # (in virtual time, off-slot), reconnect — or give up.
                slots.release()
                counters["faults"] += 1
                if trace.enabled:
                    trace.event("fault", page.url, attempt=attempt)
                    trace.count("webfetch.faults_injected")
                exc = FetchError(f"{page.url}: injected failure on attempt {attempt}")
                if retry is not None and retry.should_retry(exc, attempt):
                    backoff = retry.delay(attempt, page.url)
                    counters["retries"] += 1
                    if trace.enabled:
                        trace.event(
                            "retry",
                            page.url,
                            attempt=attempt,
                            delay=backoff,
                            exception="FetchError",
                        )
                        trace.count("resilience.retries")
                    if backoff > 0:
                        yield backoff
                    attempt += 1
                    continue
                errors.append(exc)
                return
            # streaming: pay for the bytes in bandwidth-share-sized slices
            streaming["n"] += 1
            remaining = float(page.size_bytes)
            slice_bytes = 16_384.0
            while remaining > 0:
                share = site.bandwidth_bytes_per_s / max(1, streaming["n"])
                chunk = min(slice_bytes, remaining)
                yield chunk / share
                remaining -= chunk
            streaming["n"] -= 1
            slots.release()
            page_times.append(sim.now - start)
            return

    for page in site.pages:
        sim.spawn(fetch(page), name=page.url)
    sim.run(max_steps=5_000_000)

    if errors:
        # Deterministic: completion order is fixed by the simulation, so
        # "the first page to exhaust its budget" is reproducible.
        raise errors[0]
    return FetchReport(
        connections=connections,
        n_pages=len(site.pages),
        total_bytes=site.total_bytes,
        makespan=sim.now,
        mean_page_time=sum(page_times) / len(page_times),
        retries=counters["retries"],
        faults=counters["faults"],
    )


def sweep_connections(
    site: WebSite,
    counts: list[int],
    faults: FaultPlan | None = None,
    retry: RetryPolicy | None = None,
) -> list[FetchReport]:
    """Fetch the same site at each connection count (the project's sweep)."""
    return [fetch_all(site, k, faults=faults, retry=retry) for k in counts]


def optimal_connections(reports: list[FetchReport]) -> int:
    """The connection count with the smallest makespan (ties: fewest)."""
    if not reports:
        raise ValueError("no reports to compare")
    best = min(reports, key=lambda r: (r.makespan, r.connections))
    return best.connections
