"""Project 1: thumbnails of images in a folder.

The brief: open a folder of images, display a thumbnail for each, scale
in parallel, and keep the GUI fully responsive (scrolling works while
thumbnails render).  This module provides:

* :func:`scale_image` — real area-averaging downscale (NumPy);
* :func:`scaling_cost` — its cost model for virtual-time runs;
* :class:`ThumbnailRenderer` — the app logic under four strategies the
  student groups compared: ``sequential``, ``ptask`` (multi-task),
  ``farm`` (fixed worker lanes, the SwingWorker/AsyncTask analogue) and
  ``pyjama`` (a parallel-for over images).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.apps.corpus import SyntheticImage
from repro.executor.base import Executor
from repro.ptask import ParallelTaskRuntime, task_farm
from repro.pyjama import Pyjama

__all__ = ["scale_image", "scale_pixels", "scaling_cost", "Thumbnail", "ThumbnailRenderer", "STRATEGIES"]

#: reference-seconds per source pixel for area-average scaling
COST_PER_PIXEL = 2e-8

STRATEGIES = ("sequential", "ptask", "farm", "pyjama")


@dataclass(frozen=True)
class Thumbnail:
    name: str
    width: int
    height: int
    checksum: float  # mean intensity: lets tests verify real scaling happened


def scale_image(image: SyntheticImage, target_side: int) -> Thumbnail:
    """Area-average ``image`` down so its longer side is ``target_side``.

    Pure NumPy, deliberately real work: the mean intensity of the
    thumbnail must equal the mean of the covered source region, which is
    what the correctness tests check.
    """
    if target_side < 1:
        raise ValueError(f"target_side must be >= 1, got {target_side}")
    src = image.pixels
    h, w = src.shape
    scale = max(h, w) / target_side
    if scale <= 1.0:
        return Thumbnail(image.name, w, h, float(src.mean()))
    th = max(1, int(h / scale))
    tw = max(1, int(w / scale))
    # Crop to a multiple of the block size, then block-average.
    bh, bw = h // th, w // tw
    cropped = src[: th * bh, : tw * bw]
    blocks = cropped.reshape(th, bh, tw, bw)
    thumb = blocks.mean(axis=(1, 3))
    return Thumbnail(image.name, tw, th, float(thumb.mean()))


def scaling_cost(image: SyntheticImage) -> float:
    """Virtual cost of scaling ``image`` (proportional to source pixels)."""
    return COST_PER_PIXEL * image.n_pixels


def scale_pixels(pixels, name: str, target_side: int) -> Thumbnail:
    """Process-friendly flat entry point for :func:`scale_image`.

    Takes the raw pixel array as a *top-level* argument (rather than
    tucked inside a :class:`SyntheticImage`) so the processes backend's
    shared-memory plane can intercept it; everything else is unchanged.
    The recursing/strategy logic of :class:`ThumbnailRenderer` stays
    in-process — this is the piece of the thumbnail workload that
    benefits from real cores.
    """
    return scale_image(SyntheticImage(name=name, pixels=np.asarray(pixels)), target_side)


class ThumbnailRenderer:
    """The thumbnail app's compute core, parameterised by strategy."""

    def __init__(
        self,
        executor: Executor,
        target_side: int = 32,
        on_thumbnail: Callable[[Thumbnail], None] | None = None,
        edt: object | None = None,
    ) -> None:
        """``on_thumbnail`` receives each thumbnail as it completes (the
        interim-update hook a GUI wires to a ListView via the EDT)."""
        self.executor = executor
        self.target_side = target_side
        self.on_thumbnail = on_thumbnail
        self.edt = edt
        self.runtime = ParallelTaskRuntime(executor, edt=edt)
        self.omp = Pyjama(executor, edt=edt)

    def _scale_one(self, image: SyntheticImage) -> Thumbnail:
        self.executor.compute(scaling_cost(image))
        thumb = scale_image(image, self.target_side)
        if self.on_thumbnail is not None:
            # Interim update: route via the EDT when one is attached, so
            # widget mutation stays on the UI thread.
            if self.edt is not None:
                self.edt.invoke_later(self.on_thumbnail, thumb)
            else:
                self.on_thumbnail(thumb)
        return thumb

    def render(self, images: Sequence[SyntheticImage], strategy: str = "ptask", workers: int | None = None) -> list[Thumbnail]:
        """Render all thumbnails; results in folder order."""
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}; expected one of {STRATEGIES}")
        if strategy == "sequential":
            out = []
            for img in images:
                thumb = self._scale_one(img)
                out.append(thumb)
            return out
        if strategy == "ptask":
            mt = self.runtime.spawn_multi(self._scale_one, list(images))
            return mt.results()
        if strategy == "farm":
            lanes = workers or self.executor.cores
            return task_farm(self.runtime, self._scale_one, list(images), workers=lanes)
        # pyjama: dynamic-for over images, skew-balanced by cost
        return self.omp.parallel_for(
            list(images),
            self._scale_one,
            schedule="dynamic",
            num_threads=workers or self.executor.cores,
        )
