"""Application workloads: the ten SoftEng 751 projects (paper §IV-C).

Each module implements one project's computation on top of the Parallel
Task / Pyjama layers, with explicit cost models so the same code runs on
real threads and in virtual time:

===============  =====================================================
module            project
===============  =====================================================
``images``        1 — thumbnails of images in a folder (GUI-responsive)
``sorting``       2 — parallel quicksort, three ways
``kernels``       3 — computational kernels in Pyjama
``textsearch``    4 — search for a string in a folder's text files
(``pyjama``)      5 — reductions (lives in :mod:`repro.pyjama.reduction`)
(``ptask``)       6 — task-safe classes (lives in :mod:`repro.ptask.tasksafe`)
``pdfsearch``     7 — PDF searching at different granularities
(``memmodel``)    8 — memory model (lives in :mod:`repro.memmodel`)
(``concurrentlib``) 9 — collections (lives in :mod:`repro.concurrentlib`)
``webfetch``      10 — fast web access through concurrent connections
===============  =====================================================

``corpus`` provides the seeded synthetic data standing in for the
paper's image folders, local PDFs and web pages (DESIGN.md §2).
"""

from repro.apps.corpus import (
    SyntheticImage,
    TextCorpus,
    PdfCorpus,
    WebSite,
    make_image_folder,
    make_pdf_corpus,
    make_text_corpus,
    make_website,
)

__all__ = [
    "SyntheticImage",
    "TextCorpus",
    "PdfCorpus",
    "WebSite",
    "make_image_folder",
    "make_text_corpus",
    "make_pdf_corpus",
    "make_website",
]
