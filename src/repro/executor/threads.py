"""A work-stealing thread pool with blocked-join helping.

This is the real-concurrency backend: N OS threads, each with its own
double-ended work queue (LIFO for the owner, FIFO for thieves), a shared
inbox for external submissions, and the ForkJoinPool *helping* discipline
— a worker that blocks on ``future.result()`` executes other pending
tasks instead of idling, which is what makes recursive fork-join programs
(parallel quicksort, project 2) deadlock-free on a bounded pool.

Under CPython's GIL this pool provides concurrency, not parallelism; it
exists for correctness testing (the task and collection semantics are
exercised under genuine preemption) and for the GUI responsiveness demos,
where ``compute(cost)`` can be realised as a sleep so that background
work occupies real time without needing real cores.

Hot-path design
---------------
The per-task plumbing (submit -> queue -> pop -> run -> resolve) is the
floor under every wall-clock number in ``BENCH_pool.json`` and the
serving gateway, so it is deliberately lean:

* task records are plain tuples ``(fn, args, kwargs, future, tid, cost,
  token, deadline)`` — a dataclass costs several times the allocation;
* queue pops are **lock-free**: ``deque.append``/``pop``/``popleft`` are
  GIL-atomic, so workers scan own-deque -> inbox -> victims without
  taking the pool mutex.  The mutex only coordinates *sleeping*: a
  worker that found nothing re-scans under the lock after raising the
  ``_idle`` count, and submitters notify only when ``_idle`` says
  someone is actually waiting (the 0.05 s poll remains as a backstop);
* per-worker stat counters are single-writer lists aggregated on demand
  by the :attr:`stats` property — no mutex round-trip per task;
* a blocked join helps via a **per-waiter** ``threading.Event`` set by
  the awaited future's done-callback, so one completion wakes exactly
  the helping thread instead of thundering every worker through the
  shared condition variable.
"""

from __future__ import annotations

import heapq
import threading
import time
from collections import deque
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from repro.executor.base import Executor, ExecutorShutdown
from repro.executor.future import Future
from repro.obs import rtrace as _rtrace
from repro.obs.live.registry import REGISTRY, current_handle
from repro.obs.trace import TraceRecorder, resolve_recorder
from repro.resilience.cancel import CancelToken, DeadlineExceeded, ambient_stack
from repro.resilience.faults import FaultPlan, InjectedFault, resolve_faults

__all__ = ["WorkStealingPool", "PoolStats"]

_local = threading.local()

# Task tuple layout: (fn, args, kwargs, future, tid, cost, token, deadline).
# ``deadline`` is absolute time.monotonic(); the shared empty kwargs dict is
# safe because calls never mutate their **mapping.
_NO_KWARGS: dict = {}


@dataclass
class PoolStats:
    """Observability counters; read after ``shutdown`` for stable values."""

    tasks_executed: int = 0
    steals: int = 0
    steal_attempts: int = 0
    helped_joins: int = 0
    per_worker_executed: list[int] = field(default_factory=list)


class _PoolFuture(Future):
    """Future whose ``result`` lets a blocked worker help."""

    __slots__ = ("_pool",)

    def __init__(self, pool: "WorkStealingPool", name: str = "") -> None:
        super().__init__(name=name)
        self._pool = pool

    def result(self, timeout: float | None = None) -> Any:
        if self.done():
            return super().result(timeout)
        # Live state: blocked on this join for the whole wait; tasks
        # executed while helping nest their own running scopes inside it.
        handle = current_handle()
        scope = handle.blocked(f"join:{self.name}") if handle is not None else nullcontext()
        with scope:
            if not self.done() and getattr(_local, "worker", None) is not None:
                # One deadline for the whole wait: helping consumes part of
                # the budget, the blocking wait below gets only the remainder.
                deadline = None if timeout is None else time.monotonic() + timeout
                self._pool._help_until(self, deadline)
                timeout = None if deadline is None else max(0.0, deadline - time.monotonic())
            return super().result(timeout)

    def cancel(self, reason: str | BaseException | None = None) -> bool:
        if not super().cancel(reason):
            return False
        pool = self._pool
        if pool.trace.enabled:
            pool.trace.event(
                "cancel",
                self.name,
                task_id=self.meta.get("tid", 0),
                exception=type(self._exception).__name__,
            )
            pool.trace.count("pool.cancelled")
        pool._notify_all()  # wake workers so the dead task is dropped promptly
        return True


class WorkStealingPool(Executor):
    """Bounded pool of worker threads with per-worker deques.

    .. note:: prefer ``repro.executor.create("threads", cores=N, ...)``
       over this constructor; the direct form stays supported for
       backward compatibility (``ThreadPoolExecutor`` is an alias).
    """

    def __init__(
        self,
        workers: int = 4,
        compute_mode: str = "noop",
        time_scale: float = 1.0,
        steal_seed: int = 0,
        name: str = "pool",
        scheduling: str = "stealing",
        trace: TraceRecorder | None = None,
        faults: FaultPlan | None = None,
    ) -> None:
        """
        Parameters
        ----------
        workers:
            Number of worker threads.
        compute_mode:
            How ``compute(cost)`` is realised: ``"noop"`` (account
            nothing), ``"sleep"`` (sleep ``cost * time_scale`` — releases
            the GIL, used by responsiveness demos) or ``"spin"`` (busy
            loop — holds a core, used to create genuine CPU pressure).
        time_scale:
            Seconds of real time per reference-second of cost.
        steal_seed:
            Seed for each worker's victim-selection order.
        scheduling:
            ``"stealing"`` (per-worker deques, LIFO-own/FIFO-steal) or
            ``"central"`` (one shared FIFO, no local queues) — the
            structural ablation of the pool design.
        trace:
            Observability recorder (:mod:`repro.obs`); ``None`` picks up
            the ambient recorder (disabled by default).  When enabled the
            pool emits submit instants, per-task spans, steal/help
            instants, critical-section spans and barrier events — plus
            cancel/fault/drain lifecycle events.
        faults:
            Optional :class:`~repro.resilience.FaultPlan`; ``None`` picks
            up the ambient plan installed by
            :func:`repro.resilience.use_faults` (normally none).  An
            active plan may fail task bodies with
            :class:`~repro.resilience.InjectedFault` and persistently
            throttle a seeded subset of workers (realised ``compute``
            stretched by the plan's slow-worker factor).
        """
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if compute_mode not in ("noop", "sleep", "spin"):
            raise ValueError(f"unknown compute_mode {compute_mode!r}")
        if scheduling not in ("stealing", "central"):
            raise ValueError(f"unknown scheduling {scheduling!r}")
        self.cores = workers
        self.name = name
        self.compute_mode = compute_mode
        self.time_scale = time_scale
        self.scheduling = scheduling
        self._stealing = scheduling == "stealing"
        self.trace = resolve_recorder(trace)
        self.faults = resolve_faults(faults)

        self._mutex = threading.Lock()
        self._work_available = threading.Condition(self._mutex)
        self._deques: list[deque[tuple]] = [deque() for _ in range(workers)]
        self._inbox: deque[tuple] = deque()
        self._shutdown = False
        self._task_counter = 0
        #: workers parked in _work_available.wait (maintained under the
        #: mutex, read lock-free by submitters to gate the notify)
        self._idle = 0
        # Per-worker counters: each index is written by exactly one
        # thread (the worker, including while it helps), so plain int
        # increments are safe under the GIL; ``stats`` aggregates.
        self._executed_w = [0] * workers
        self._steals_w = [0] * workers
        self._steal_attempts_w = [0] * workers
        self._helped_w = [0] * workers
        self._critical_locks: dict[str, threading.RLock] = {}
        self._barriers: dict[str, threading.Barrier] = {}

        # Seeded straggler injection: each worker's compute throttle is
        # fixed at construction, so a "slow worker" stays slow for the
        # pool's lifetime (the scenario work stealing should absorb).
        if self.faults is not None and self.faults.active:
            self._worker_throttle = [
                self.faults.worker_factor(name, w) for w in range(workers)
            ]
        else:
            self._worker_throttle = [1.0] * workers

        # Deadline reaper: a heap of (abs_deadline, seq, future) serviced
        # by one lazily started daemon thread that cancels overdue
        # still-pending futures with DeadlineExceeded.
        self._deadline_heap: list[tuple[float, int, Future]] = []
        self._deadline_seq = 0
        self._reaper: threading.Thread | None = None
        self._reaper_wakeup = threading.Condition(self._mutex)

        # Live observability: queue depth is a *pull* gauge — nothing is
        # updated on push/pop; the sampler/exporter computes the depth at
        # scrape time from the deque lengths (len() is GIL-atomic).
        self._queue_gauge = REGISTRY.register_gauge(
            f"{name}.queue_depth",
            lambda: sum(map(len, self._deques)) + len(self._inbox),
        )

        rng = np.random.default_rng(steal_seed)
        self._victim_orders = [
            [v for v in rng.permutation(workers).tolist() if v != w] for w in range(workers)
        ]
        self._victim_queues = [
            [self._deques[v] for v in order] for order in self._victim_orders
        ]
        self._threads = [
            threading.Thread(target=self._worker_loop, args=(w,), name=f"{name}-w{w}", daemon=True)
            for w in range(workers)
        ]
        for t in self._threads:
            t.start()

    # -- submission -----------------------------------------------------------

    def submit(
        self,
        fn: Callable[..., Any],
        *args: Any,
        cost: float | None = None,
        name: str = "",
        after: Sequence[Future] = (),
        cancel: CancelToken | None = None,
        deadline: float | None = None,
        **kwargs: Any,
    ) -> Future:
        """Enqueue ``fn`` for a worker; ``after`` gates via done-callbacks."""
        if after or cancel is not None or deadline is not None or self.trace.enabled:
            return self._submit_slow(fn, args, kwargs, cost, name, after, cancel, deadline)
        # Fast path: independent task, tracing off — one lock round
        # covers tid allocation, the shutdown check, the enqueue and the
        # idle-gated wakeup.
        future = _PoolFuture(self, name=name or getattr(fn, "__name__", "task"))
        worker = getattr(_local, "worker", None)
        with self._mutex:
            if self._shutdown:
                raise ExecutorShutdown(f"pool {self.name!r} is shut down")
            self._task_counter += 1
            tid = self._task_counter
            future.meta["tid"] = tid  # lets dependants trace their dep edges
            task = (fn, args, kwargs or _NO_KWARGS, future, tid, cost, None, None)
            if self._stealing and worker is not None and worker[0] is self:
                self._deques[worker[1]].append(task)  # LIFO for the owner
            else:
                self._inbox.append(task)
            if self._idle:
                self._work_available.notify()
        return future

    def _submit_slow(
        self,
        fn: Callable[..., Any],
        args: tuple,
        kwargs: dict,
        cost: float | None,
        name: str,
        after: Sequence[Future],
        cancel: CancelToken | None,
        deadline: float | None,
    ) -> Future:
        if deadline is not None and deadline < 0:
            raise ValueError(f"deadline must be >= 0, got {deadline}")
        future = _PoolFuture(self, name=name or getattr(fn, "__name__", "task"))
        with self._mutex:
            if self._shutdown:
                raise ExecutorShutdown(f"pool {self.name!r} is shut down")
            self._task_counter += 1
            tid = self._task_counter
        future.meta["tid"] = tid  # lets dependants trace their dep edges
        abs_deadline = None if deadline is None else time.monotonic() + deadline
        task = (fn, args, kwargs, future, tid, cost, cancel, abs_deadline)
        if cancel is not None:
            # A cancelled token cancels the future while it is queued;
            # Future.cancel is a no-op once a worker has claimed the task.
            cancel.on_cancel(
                lambda: future.cancel(f"token {cancel.name!r} cancelled")
            )
        if abs_deadline is not None:
            self._watch_deadline(abs_deadline, future)
        if self.trace.enabled:
            # Parent/dep task ids let the analyzer rebuild the task graph
            # (work/span/critical path) from the event stream alone.
            dep_tasks = [d.meta["tid"] for d in after if "tid" in d.meta]
            self.trace.event(
                "submit",
                future.name,
                task_id=tid,
                parent=self.task_id(),
                deps=len(after),
                dep_tasks=dep_tasks,
            )
            self.trace.count("pool.submitted")

        pending = [dep for dep in after if not dep.done()]
        if not pending:
            for dep in after:
                if dep.cancelled():
                    # Cancellation cascades: a cancelled dep *cancels*
                    # the dependent (whose own cancellation cascades on).
                    future.cancel(f"dependency {dep.name!r} was cancelled")
                    return future
                exc = dep.exception()
                if exc is not None:
                    future.fail_if_pending(exc)
                    return future
            self._enqueue(task)
            return future

        # Dependence manager: enqueue once the last outstanding dep lands.
        state_lock = threading.Lock()
        remaining = [len(pending)]

        def on_dep_done(dep: Future) -> None:
            with state_lock:
                if remaining[0] <= 0:
                    return  # already failed/released
                dead = dep.cancelled() or dep.exception() is not None
                if dead:
                    remaining[0] = 0
                else:
                    remaining[0] -= 1
                    if remaining[0] > 0:
                        return
            if dep.cancelled():
                future.cancel(f"dependency {dep.name!r} was cancelled")
            elif dead:
                future.fail_if_pending(dep.exception())
            else:
                self._enqueue(task)

        for dep in pending:
            dep.add_done_callback(on_dep_done)
        return future

    def submit_many(
        self,
        fn: Callable[..., Any],
        arg_tuples: Sequence[Sequence[Any]],
        *,
        costs: Sequence[float] | None = None,
        name: str = "batch",
    ) -> list[Future]:
        """Group-submit fast path: futures built outside the lock.

        Independent tasks only (no ``after``/``cancel``/``deadline`` —
        use :meth:`submit` for those).  A tid range is reserved in one
        lock round, the futures and task tuples are built without the
        lock (future construction is the bulk of submission cost), and a
        second lock round lands the whole group atomically — workers see
        either none or all of it, and at most ``idle`` waiters are woken.
        """
        arg_tuples = list(arg_tuples)
        n = len(arg_tuples)
        if costs is not None and len(costs) != n:
            raise ValueError(
                f"costs has {len(costs)} entries for {n} tasks"
            )
        with self._mutex:
            if self._shutdown:
                raise ExecutorShutdown(f"pool {self.name!r} is shut down")
            base = self._task_counter
            self._task_counter = base + n
        futures: list[Future] = []
        tasks: list[tuple] = []
        tid = base
        for i, args in enumerate(arg_tuples):
            tid += 1
            future = _PoolFuture(self, name=f"{name}[{i}]")
            future.meta["tid"] = tid
            futures.append(future)
            tasks.append(
                (
                    fn,
                    tuple(args),
                    _NO_KWARGS,
                    future,
                    tid,
                    costs[i] if costs is not None else None,
                    None,
                    None,
                )
            )
        worker = getattr(_local, "worker", None)
        with self._mutex:
            if self._shutdown:
                raise ExecutorShutdown(f"pool {self.name!r} is shut down")
            if self._stealing and worker is not None and worker[0] is self:
                self._deques[worker[1]].extend(tasks)
            else:
                self._inbox.extend(tasks)
            idle = self._idle
            if idle:
                if idle > 1 and n > 1:
                    self._work_available.notify_all()
                else:
                    self._work_available.notify()
        if self.trace.enabled:
            parent = self.task_id()
            for task in tasks:
                self.trace.event(
                    "submit",
                    task[3].name,
                    task_id=task[4],
                    parent=parent,
                    deps=0,
                    dep_tasks=[],
                )
            self.trace.count("pool.submitted", len(tasks))
        return futures

    def _enqueue(self, task: tuple) -> None:
        worker = getattr(_local, "worker", None)
        with self._mutex:
            if self._shutdown:
                task[3].fail_if_pending(
                    ExecutorShutdown(f"pool {self.name!r} is shut down")
                )
                return
            if self._stealing and worker is not None and worker[0] is self:
                self._deques[worker[1]].append(task)  # LIFO for the owner
            else:
                self._inbox.append(task)  # external submit, or central mode
            if self._idle:
                self._work_available.notify()

    # -- worker machinery ----------------------------------------------------------

    def _poll(self, wid: int, count_attempt: bool = True) -> tuple[tuple | None, bool]:
        """Pop a task (own LIFO, inbox FIFO, else steal) without the mutex.

        All three queues are deques, whose append/pop/popleft are
        GIL-atomic, so concurrent owners and thieves never corrupt them;
        the try/except guards the pop-vs-pop race on a queue that just
        went empty.  An empty own-deque + empty inbox counts as one steal
        *attempt* (a scan of every victim queue), whether or not it finds
        work — steals/attempts is the scheduler-health success rate the
        analyzer reports.  Idle polling counts too, deliberately: a pool
        that scans and finds nothing is telling you it is starved.
        """
        own = self._deques[wid]
        if own:
            try:
                return own.pop(), False
            except IndexError:
                pass
        inbox = self._inbox
        if inbox:
            try:
                return inbox.popleft(), False
            except IndexError:
                pass
        if count_attempt:
            self._steal_attempts_w[wid] += 1
            if self.trace.enabled:
                self.trace.count("pool.steal_attempts")
        for vq in self._victim_queues[wid]:
            if vq:
                try:
                    return vq.popleft(), True  # FIFO steal from the cold end
                except IndexError:
                    continue
        return None, False

    def _run_task(self, task: tuple, wid: int, handle: Any, tid_stack: list, tok_stack: list) -> None:
        fn, args, kwargs, future, tid, _cost, token, deadline = task
        if deadline is not None and time.monotonic() > deadline:
            # Overdue at pop time: cancel rather than silently abandon.
            future.cancel(
                DeadlineExceeded(f"task {future.name!r} missed its deadline")
            )
            return
        if not future.try_start():
            # Cancelled (token, deadline reaper, or dep cascade) while
            # queued — the future is already complete, drop the task.
            return
        trace = self.trace
        tracing = trace.enabled
        faults = self.faults
        if faults is not None and faults.should_fail_task(self.name, tid):
            if tracing:
                trace.event("fault", future.name, task_id=tid, worker=wid)
                trace.count("pool.faults_injected")
            future.set_exception(
                InjectedFault(f"task {future.name!r} failed by fault plan")
            )
            return
        tid_stack.append(tid)
        # Live state: running <this task>.  begin/end save and restore the
        # previous scope, so a task executed *inside* a blocked join
        # (_help_until) nests correctly instead of clobbering the outer one.
        live_prev = handle.begin_task(future.name, tid) if handle is not None else None
        if tracing:
            trace.event("task", future.name, phase="B", task_id=tid, worker=wid)
            started = time.monotonic()
        rt_t0 = time.monotonic() if _rtrace.active() is not None else None
        # Ambient-token scope, inlined: a task with no token running at
        # the top of a worker loop (empty stack) needs no push at all; a
        # nested task (helping) still pushes None so it does not inherit
        # the token of the task that spawned it.
        pushed = token is not None or bool(tok_stack)
        if pushed:
            tok_stack.append(token)
        try:
            value = fn(*args, **kwargs)
        except Exception as exc:
            if pushed:
                tok_stack.pop()
            if rt_t0 is not None:
                # stamp before completion: done-callbacks read the meta
                future.meta["rt_span"] = (rt_t0, time.monotonic(), wid)
            future.set_exception(exc)
        else:
            if pushed:
                tok_stack.pop()
            if rt_t0 is not None:
                future.meta["rt_span"] = (rt_t0, time.monotonic(), wid)
            future.set_result(value)
        finally:
            tid_stack.pop()
            if handle is not None:
                handle.end_task(live_prev)
            if tracing:
                trace.event("task", future.name, phase="E", task_id=tid, worker=wid)
                trace.observe("pool.task_seconds", time.monotonic() - started)
                trace.count("pool.tasks_executed")
            self._executed_w[wid] += 1

    def _worker_loop(self, wid: int) -> None:
        _local.worker = (self, wid)
        handle = REGISTRY.register(f"{self.name}-w{wid}", role="pool")
        tid_stack = getattr(_local, "tid_stack", None)
        if tid_stack is None:
            tid_stack = _local.tid_stack = []
        tok_stack = ambient_stack()
        own = self._deques[wid]
        inbox = self._inbox
        poll = self._poll
        run_task = self._run_task
        cond = self._work_available
        try:
            while True:
                # Lock-free fast path: pop own LIFO / inbox FIFO directly.
                task = None
                stolen = False
                if own:
                    try:
                        task = own.pop()
                    except IndexError:
                        pass
                if task is None:
                    if inbox:
                        try:
                            task = inbox.popleft()
                        except IndexError:
                            pass
                    if task is None:
                        task, stolen = poll(wid)
                if task is None:
                    with cond:
                        if self._shutdown:
                            return
                        # Raise _idle *before* the locked re-scan: a
                        # submitter that reads _idle == 0 enqueued before
                        # this point, so the re-scan below sees its task
                        # and no wakeup is lost.
                        self._idle += 1
                        task, stolen = poll(wid, count_attempt=False)
                        if task is None:
                            cond.wait(timeout=0.05)
                        self._idle -= 1
                    if task is None:
                        continue
                if stolen:
                    self._steals_w[wid] += 1
                    if self.trace.enabled:
                        self.trace.event("steal", f"w{wid}-steals", task_id=task[4], worker=wid)
                        self.trace.count("pool.steals")
                run_task(task, wid, handle, tid_stack, tok_stack)
        finally:
            _local.worker = None
            REGISTRY.unregister(handle)

    def _help_until(self, future: Future, deadline: float | None) -> None:
        """Called by a worker blocked on ``future``: run other tasks.

        ``deadline`` is absolute (``time.monotonic()``) and is checked at
        the top of every iteration — including the no-work idle path, so
        a bounded wait with an empty pool still returns on time and lets
        ``Future.result`` raise ``TimeoutError`` uniformly.

        The wakeup is scoped to *this* thread: the awaited future's
        done-callback sets a private event, so its completion never
        touches the pool-wide condition variable (which used to wake
        every idle worker per completed join under heavy fanout).
        """
        worker = _local.worker
        wid = worker[1]
        handle = current_handle()
        tid_stack = getattr(_local, "tid_stack", None)
        if tid_stack is None:
            tid_stack = _local.tid_stack = []
        tok_stack = ambient_stack()
        waiter = threading.Event()
        future.add_done_callback(lambda _f: waiter.set())
        while not future.done():
            if deadline is not None and time.monotonic() > deadline:
                return
            task, stolen = self._poll(wid)
            if task is None:
                if future.done():
                    return
                # Parked until new work *could* exist (poll backstop) or
                # the join target completes (event set by the callback).
                waiter.wait(timeout=0.01)
                continue
            if stolen:
                self._steals_w[wid] += 1
            self._helped_w[wid] += 1
            if self.trace.enabled:
                if stolen:
                    self.trace.event("steal", f"w{wid}-steals", task_id=task[4], worker=wid)
                    self.trace.count("pool.steals")
                self.trace.event("help", f"w{wid}-helps", task_id=task[4], worker=wid)
                self.trace.count("pool.helped_joins")
            self._run_task(task, wid, handle, tid_stack, tok_stack)

    def _notify_all(self) -> None:
        with self._work_available:
            self._work_available.notify_all()

    # -- deadline reaper -----------------------------------------------------

    def _watch_deadline(self, abs_deadline: float, future: Future) -> None:
        """Register ``future`` for cancellation once ``abs_deadline`` passes.

        The reaper thread starts lazily on the first deadline so pools
        that never use deadlines pay nothing.
        """
        with self._mutex:
            if self._shutdown:
                return
            self._deadline_seq += 1
            heapq.heappush(self._deadline_heap, (abs_deadline, self._deadline_seq, future))
            if self._reaper is None:
                self._reaper = threading.Thread(
                    target=self._reaper_loop, name=f"{self.name}-reaper", daemon=True
                )
                self._reaper.start()
            self._reaper_wakeup.notify_all()

    def _reaper_loop(self) -> None:
        while True:
            expired: list[Future] = []
            with self._mutex:
                if self._shutdown:
                    return
                now = time.monotonic()
                heap = self._deadline_heap
                while heap and heap[0][0] <= now:
                    expired.append(heapq.heappop(heap)[2])
                # Sleep to the next deadline, capped so shutdown is seen
                # promptly even without a wakeup.
                wait = min(heap[0][0] - now, 0.05) if heap else 0.05
                if not expired:
                    self._reaper_wakeup.wait(timeout=max(wait, 0.001))
                    continue
            for future in expired:
                future.cancel(
                    DeadlineExceeded(f"task {future.name!r} missed its deadline")
                )

    # -- Executor interface --------------------------------------------------------

    def compute(self, cost: float) -> None:
        """Realise ``cost`` per the pool's compute_mode (noop/sleep/spin).

        A fault plan's slow-worker throttle stretches the realised
        duration on throttled workers (noop mode realises nothing, so
        there is nothing to stretch there).
        """
        if cost < 0:
            raise ValueError(f"cost must be >= 0, got {cost}")
        if self.compute_mode == "noop" or cost == 0:
            return
        duration = cost * self.time_scale
        worker = getattr(_local, "worker", None)
        if worker is not None and worker[0] is self:
            duration *= self._worker_throttle[worker[1]]
        if self.compute_mode == "sleep":
            time.sleep(duration)
        else:  # spin
            end = time.monotonic() + duration
            while time.monotonic() < end:
                pass

    def _acquire_critical(self, lock: threading.RLock, name: str) -> None:
        """Acquire ``lock``, surfacing contention as a live ``blocked`` state.

        Uncontended acquisition stays on the fast path (one non-blocking
        try); only an actual wait flips the worker's registry state to
        ``blocked`` with a ``lock:<name>`` detail the sampler attributes.
        """
        if lock.acquire(blocking=False):
            return
        handle = current_handle()
        if handle is None:
            lock.acquire()
            return
        with handle.blocked(f"lock:{name}"):
            lock.acquire()

    @contextmanager
    def critical(self, name: str = "default") -> Iterator[None]:
        """Named critical section (re-entrant per thread, see base class)."""
        with self._mutex:
            lock = self._critical_locks.setdefault(name, threading.RLock())
        trace = self.trace
        if not trace.enabled:
            self._acquire_critical(lock, name)
            try:
                yield
            finally:
                lock.release()
            return
        # The span opens at the acquire *request*, so lock wait time is
        # visible in the trace; "acquired" marks the transition.
        tid = self.task_id()
        worker = getattr(_local, "worker", None)
        wid = worker[1] if worker is not None and worker[0] is self else None
        trace.event("critical", name, phase="B", task_id=tid, worker=wid, lock=name)
        requested = time.monotonic()
        try:
            self._acquire_critical(lock, name)
            try:
                trace.event("critical", f"{name}:acquired", task_id=tid, worker=wid)
                trace.observe("pool.lock_wait_seconds", time.monotonic() - requested)
                trace.count("pool.critical_sections")
                yield
            finally:
                lock.release()
        finally:
            trace.event("critical", name, phase="E", task_id=tid, worker=wid)

    def barrier(self, key: str, parties: int) -> None:
        """Block on a real threading.Barrier shared by the named team."""
        if parties < 1:
            raise ValueError(f"parties must be >= 1, got {parties}")
        if parties > self.cores:
            raise RuntimeError(
                f"barrier {key!r} needs {parties} parties but the pool has only "
                f"{self.cores} workers; this would deadlock"
            )
        with self._mutex:
            bar = self._barriers.get(key)
            if bar is None:
                bar = self._barriers[key] = threading.Barrier(parties)
            elif bar.parties != parties:
                raise RuntimeError(
                    f"barrier {key!r} reused with parties={parties}, was {bar.parties}"
                )
        handle = current_handle()
        scope = handle.blocked(f"barrier:{key}") if handle is not None else nullcontext()
        if not self.trace.enabled:
            with scope:
                bar.wait()
            return
        tid = self.task_id()
        self.trace.event("barrier", f"{key}:arrive", task_id=tid, key=key, parties=parties)
        waited = time.monotonic()
        with scope:
            bar.wait()
        self.trace.event("barrier", f"{key}:pass", task_id=tid, key=key, parties=parties)
        self.trace.observe("pool.barrier_wait_seconds", time.monotonic() - waited)
        self.trace.count("pool.barrier_passes")

    def task_id(self) -> int:
        stack = getattr(_local, "tid_stack", None)
        return stack[-1] if stack else 0

    def shutdown(self, drain: bool = True, timeout: float = 5.0) -> None:
        """Stop the pool; idempotent.

        ``drain=True``: workers finish every already-queued task before
        exiting (the historical behaviour, minus one bug — queued tasks
        are no longer silently dropped with forever-pending futures).

        ``drain=False``: queued-but-unstarted tasks are *not* run; their
        futures complete with :class:`ExecutorShutdown` so every waiter
        is released.  Running tasks still finish (cooperative model —
        threads are never killed).
        """
        with self._work_available:
            if self._shutdown:
                return
            stranded: list[tuple] = []
            if not drain:
                # Drain by popping (not iterating): workers pop these
                # deques lock-free, and a concurrent pop during iteration
                # would raise.  Each task lands on exactly one side.
                for dq in self._deques:
                    while True:
                        try:
                            stranded.append(dq.pop())
                        except IndexError:
                            break
                while True:
                    try:
                        stranded.append(self._inbox.popleft())
                    except IndexError:
                        break
            self._shutdown = True
            self._work_available.notify_all()
            self._reaper_wakeup.notify_all()
        for task in stranded:
            # fail_if_pending: an external cancel() racing shutdown wins
            # atomically — the future completes exactly once either way.
            future = task[3]
            if future.fail_if_pending(
                ExecutorShutdown(
                    f"task {future.name!r} stranded by non-draining shutdown "
                    f"of pool {self.name!r}"
                )
            ) and self.trace.enabled:
                self.trace.event("drain", future.name, task_id=task[4])
                self.trace.count("pool.drained")
        for t in self._threads:
            t.join(timeout=timeout)
        reaper = self._reaper
        if reaper is not None:
            reaper.join(timeout=timeout)
        self._queue_gauge.dispose()

    @property
    def stats(self) -> PoolStats:
        """Aggregated view over the per-worker counters (see __init__)."""
        per_worker = list(self._executed_w)
        return PoolStats(
            tasks_executed=sum(per_worker),
            steals=sum(self._steals_w),
            steal_attempts=sum(self._steal_attempts_w),
            helped_joins=sum(self._helped_w),
            per_worker_executed=per_worker,
        )

    def __repr__(self) -> str:
        return f"WorkStealingPool({self.name!r}, workers={self.cores}, mode={self.compute_mode!r})"
