"""A work-stealing thread pool with blocked-join helping.

This is the real-concurrency backend: N OS threads, each with its own
double-ended work queue (LIFO for the owner, FIFO for thieves), a shared
inbox for external submissions, and the ForkJoinPool *helping* discipline
— a worker that blocks on ``future.result()`` executes other pending
tasks instead of idling, which is what makes recursive fork-join programs
(parallel quicksort, project 2) deadlock-free on a bounded pool.

Under CPython's GIL this pool provides concurrency, not parallelism; it
exists for correctness testing (the task and collection semantics are
exercised under genuine preemption) and for the GUI responsiveness demos,
where ``compute(cost)`` can be realised as a sleep so that background
work occupies real time without needing real cores.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from repro.executor.base import Executor, ExecutorShutdown
from repro.executor.future import Future
from repro.obs.trace import TraceRecorder, resolve_recorder

__all__ = ["WorkStealingPool", "PoolStats"]

_local = threading.local()


@dataclass
class _Task:
    fn: Callable[..., Any]
    args: tuple
    kwargs: dict
    future: Future
    tid: int
    cost: float | None


@dataclass
class PoolStats:
    """Observability counters; read after ``shutdown`` for stable values."""

    tasks_executed: int = 0
    steals: int = 0
    steal_attempts: int = 0
    helped_joins: int = 0
    per_worker_executed: list[int] = field(default_factory=list)


class _PoolFuture(Future):
    """Future whose ``result`` lets a blocked worker help."""

    __slots__ = ("_pool",)

    def __init__(self, pool: "WorkStealingPool", name: str = "") -> None:
        super().__init__(name=name)
        self._pool = pool

    def result(self, timeout: float | None = None) -> Any:
        if not self.done() and getattr(_local, "worker", None) is not None:
            self._pool._help_until(self, timeout)
        return super().result(timeout)


class WorkStealingPool(Executor):
    """Bounded pool of worker threads with per-worker deques.

    .. note:: prefer ``repro.executor.create("threads", cores=N, ...)``
       over this constructor; the direct form stays supported for
       backward compatibility (``ThreadPoolExecutor`` is an alias).
    """

    def __init__(
        self,
        workers: int = 4,
        compute_mode: str = "noop",
        time_scale: float = 1.0,
        steal_seed: int = 0,
        name: str = "pool",
        scheduling: str = "stealing",
        trace: TraceRecorder | None = None,
    ) -> None:
        """
        Parameters
        ----------
        workers:
            Number of worker threads.
        compute_mode:
            How ``compute(cost)`` is realised: ``"noop"`` (account
            nothing), ``"sleep"`` (sleep ``cost * time_scale`` — releases
            the GIL, used by responsiveness demos) or ``"spin"`` (busy
            loop — holds a core, used to create genuine CPU pressure).
        time_scale:
            Seconds of real time per reference-second of cost.
        steal_seed:
            Seed for each worker's victim-selection order.
        scheduling:
            ``"stealing"`` (per-worker deques, LIFO-own/FIFO-steal) or
            ``"central"`` (one shared FIFO, no local queues) — the
            structural ablation of the pool design.
        trace:
            Observability recorder (:mod:`repro.obs`); ``None`` picks up
            the ambient recorder (disabled by default).  When enabled the
            pool emits submit instants, per-task spans, steal/help
            instants, critical-section spans and barrier events.
        """
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if compute_mode not in ("noop", "sleep", "spin"):
            raise ValueError(f"unknown compute_mode {compute_mode!r}")
        if scheduling not in ("stealing", "central"):
            raise ValueError(f"unknown scheduling {scheduling!r}")
        self.cores = workers
        self.name = name
        self.compute_mode = compute_mode
        self.time_scale = time_scale
        self.scheduling = scheduling
        self.trace = resolve_recorder(trace)

        self._mutex = threading.Lock()
        self._work_available = threading.Condition(self._mutex)
        self._deques: list[deque[_Task]] = [deque() for _ in range(workers)]
        self._inbox: deque[_Task] = deque()
        self._shutdown = False
        self._task_counter = 0
        self._stats = PoolStats(per_worker_executed=[0] * workers)
        self._critical_locks: dict[str, threading.RLock] = {}
        self._barriers: dict[str, threading.Barrier] = {}

        rng = np.random.default_rng(steal_seed)
        self._victim_orders = [
            [v for v in rng.permutation(workers).tolist() if v != w] for w in range(workers)
        ]
        self._threads = [
            threading.Thread(target=self._worker_loop, args=(w,), name=f"{name}-w{w}", daemon=True)
            for w in range(workers)
        ]
        for t in self._threads:
            t.start()

    # -- submission -----------------------------------------------------------

    def submit(
        self,
        fn: Callable[..., Any],
        *args: Any,
        cost: float | None = None,
        name: str = "",
        after: Sequence[Future] = (),
        **kwargs: Any,
    ) -> Future:
        """Enqueue ``fn`` for a worker; ``after`` gates via done-callbacks."""
        future = _PoolFuture(self, name=name or getattr(fn, "__name__", "task"))
        with self._mutex:
            if self._shutdown:
                raise ExecutorShutdown(f"pool {self.name!r} is shut down")
            self._task_counter += 1
            tid = self._task_counter
        future.meta["tid"] = tid  # lets dependants trace their dep edges
        task = _Task(fn=fn, args=args, kwargs=kwargs, future=future, tid=tid, cost=cost)
        if self.trace.enabled:
            # Parent/dep task ids let the analyzer rebuild the task graph
            # (work/span/critical path) from the event stream alone.
            dep_tasks = [d.meta["tid"] for d in after if "tid" in d.meta]
            self.trace.event(
                "submit",
                future.name,
                task_id=tid,
                parent=self.task_id(),
                deps=len(after),
                dep_tasks=dep_tasks,
            )
            self.trace.count("pool.submitted")

        pending = [dep for dep in after if not dep.done()]
        if not pending:
            for dep in after:
                exc = dep.exception()
                if exc is not None:
                    future.set_exception(exc)
                    return future
            self._enqueue(task)
            return future

        # Dependence manager: enqueue once the last outstanding dep lands.
        state_lock = threading.Lock()
        remaining = [len(pending)]

        def on_dep_done(dep: Future) -> None:
            exc = dep.exception()
            with state_lock:
                if remaining[0] <= 0:
                    return  # already failed/released
                if exc is not None:
                    remaining[0] = 0
                    failed = True
                else:
                    remaining[0] -= 1
                    failed = False
                    if remaining[0] > 0:
                        return
            if failed:
                future.set_exception(exc)
            else:
                self._enqueue(task)

        for dep in pending:
            dep.add_done_callback(on_dep_done)
        return future

    def _enqueue(self, task: _Task) -> None:
        worker = getattr(_local, "worker", None)
        with self._work_available:
            if self._shutdown:
                task.future.set_exception(ExecutorShutdown(f"pool {self.name!r} is shut down"))
                return
            if self.scheduling == "stealing" and worker is not None and worker[0] is self:
                self._deques[worker[1]].append(task)  # LIFO for the owner
            else:
                self._inbox.append(task)  # external submit, or central mode
            self._work_available.notify()

    # -- worker machinery ----------------------------------------------------------

    def _take_work(self, wid: int) -> tuple[_Task | None, bool]:
        """Pop a task (own LIFO, inbox FIFO, else steal). Caller holds mutex.

        An empty own-deque + empty inbox counts as one steal *attempt*
        (a scan of every victim queue), whether or not it finds work —
        steals/attempts is the scheduler-health success rate the analyzer
        reports.  Idle polling counts too, deliberately: a pool that scans
        and finds nothing is telling you it is starved.
        """
        own = self._deques[wid]
        if own:
            return own.pop(), False
        if self._inbox:
            return self._inbox.popleft(), False
        self._stats.steal_attempts += 1
        if self.trace.enabled:
            self.trace.count("pool.steal_attempts")
        for victim in self._victim_orders[wid]:
            vq = self._deques[victim]
            if vq:
                return vq.popleft(), True  # FIFO steal from the cold end
        return None, False

    def _run_task(self, task: _Task, wid: int) -> None:
        stack = getattr(_local, "tid_stack", None)
        if stack is None:
            stack = _local.tid_stack = []
        stack.append(task.tid)
        trace = self.trace
        if trace.enabled:
            trace.event("task", task.future.name, phase="B", task_id=task.tid, worker=wid)
            started = time.monotonic()
        try:
            value = task.fn(*task.args, **task.kwargs)
        except Exception as exc:
            task.future.set_exception(exc)
        else:
            task.future.set_result(value)
        finally:
            stack.pop()
            if trace.enabled:
                trace.event("task", task.future.name, phase="E", task_id=task.tid, worker=wid)
                trace.observe("pool.task_seconds", time.monotonic() - started)
                trace.count("pool.tasks_executed")
            with self._mutex:
                self._stats.tasks_executed += 1
                if 0 <= wid < len(self._stats.per_worker_executed):
                    self._stats.per_worker_executed[wid] += 1

    def _worker_loop(self, wid: int) -> None:
        _local.worker = (self, wid)
        try:
            while True:
                with self._work_available:
                    task, stolen = self._take_work(wid)
                    while task is None:
                        if self._shutdown:
                            return
                        self._work_available.wait(timeout=0.05)
                        task, stolen = self._take_work(wid)
                    if stolen:
                        self._stats.steals += 1
                if stolen and self.trace.enabled:
                    self.trace.event("steal", f"w{wid}-steals", task_id=task.tid, worker=wid)
                    self.trace.count("pool.steals")
                self._run_task(task, wid)
        finally:
            _local.worker = None

    def _help_until(self, future: Future, timeout: float | None) -> None:
        """Called by a worker blocked on ``future``: run other tasks."""
        worker = _local.worker
        wid = worker[1]
        deadline = None if timeout is None else time.monotonic() + timeout
        future.add_done_callback(lambda _f: self._notify_all())
        while not future.done():
            with self._work_available:
                task, stolen = self._take_work(wid)
                if task is None:
                    if future.done():
                        return
                    self._work_available.wait(timeout=0.01)
                    continue
                if stolen:
                    self._stats.steals += 1
                self._stats.helped_joins += 1
            if self.trace.enabled:
                if stolen:
                    self.trace.event("steal", f"w{wid}-steals", task_id=task.tid, worker=wid)
                    self.trace.count("pool.steals")
                self.trace.event("help", f"w{wid}-helps", task_id=task.tid, worker=wid)
                self.trace.count("pool.helped_joins")
            self._run_task(task, wid)
            if deadline is not None and time.monotonic() > deadline:
                return  # let Future.result raise TimeoutError uniformly

    def _notify_all(self) -> None:
        with self._work_available:
            self._work_available.notify_all()

    # -- Executor interface --------------------------------------------------------

    def compute(self, cost: float) -> None:
        """Realise ``cost`` per the pool's compute_mode (noop/sleep/spin)."""
        if cost < 0:
            raise ValueError(f"cost must be >= 0, got {cost}")
        if self.compute_mode == "noop" or cost == 0:
            return
        duration = cost * self.time_scale
        if self.compute_mode == "sleep":
            time.sleep(duration)
        else:  # spin
            end = time.monotonic() + duration
            while time.monotonic() < end:
                pass

    @contextmanager
    def critical(self, name: str = "default") -> Iterator[None]:
        """Named critical section (re-entrant per thread, see base class)."""
        with self._mutex:
            lock = self._critical_locks.setdefault(name, threading.RLock())
        trace = self.trace
        if not trace.enabled:
            with lock:
                yield
            return
        # The span opens at the acquire *request*, so lock wait time is
        # visible in the trace; "acquired" marks the transition.
        tid = self.task_id()
        worker = getattr(_local, "worker", None)
        wid = worker[1] if worker is not None and worker[0] is self else None
        trace.event("critical", name, phase="B", task_id=tid, worker=wid, lock=name)
        requested = time.monotonic()
        try:
            with lock:
                trace.event("critical", f"{name}:acquired", task_id=tid, worker=wid)
                trace.observe("pool.lock_wait_seconds", time.monotonic() - requested)
                trace.count("pool.critical_sections")
                yield
        finally:
            trace.event("critical", name, phase="E", task_id=tid, worker=wid)

    def barrier(self, key: str, parties: int) -> None:
        """Block on a real threading.Barrier shared by the named team."""
        if parties < 1:
            raise ValueError(f"parties must be >= 1, got {parties}")
        if parties > self.cores:
            raise RuntimeError(
                f"barrier {key!r} needs {parties} parties but the pool has only "
                f"{self.cores} workers; this would deadlock"
            )
        with self._mutex:
            bar = self._barriers.get(key)
            if bar is None:
                bar = self._barriers[key] = threading.Barrier(parties)
            elif bar.parties != parties:
                raise RuntimeError(
                    f"barrier {key!r} reused with parties={parties}, was {bar.parties}"
                )
        if not self.trace.enabled:
            bar.wait()
            return
        tid = self.task_id()
        self.trace.event("barrier", f"{key}:arrive", task_id=tid, key=key, parties=parties)
        waited = time.monotonic()
        bar.wait()
        self.trace.event("barrier", f"{key}:pass", task_id=tid, key=key, parties=parties)
        self.trace.observe("pool.barrier_wait_seconds", time.monotonic() - waited)
        self.trace.count("pool.barrier_passes")

    def task_id(self) -> int:
        stack = getattr(_local, "tid_stack", None)
        return stack[-1] if stack else 0

    def shutdown(self) -> None:
        with self._work_available:
            if self._shutdown:
                return
            self._shutdown = True
            self._work_available.notify_all()
        for t in self._threads:
            t.join(timeout=5.0)

    @property
    def stats(self) -> PoolStats:
        return self._stats

    def __repr__(self) -> str:
        return f"WorkStealingPool({self.name!r}, workers={self.cores}, mode={self.compute_mode!r})"
