"""The :class:`Executor` interface all backends implement.

The interface is deliberately richer than a plain thread pool: the task
layers (Parallel Task, Pyjama) need *cost accounting* (``compute``),
*named critical sections* (``critical``), *team barriers* (``barrier``)
and *precedence constraints* (``submit(after=...)``) so that exactly the
same program text can run on real threads and in virtual time.

Cost model contract
-------------------
``cost`` values are reference-core seconds (see
:mod:`repro.machine.spec`).  On the simulated backend they drive the
virtual schedule; on real backends they may be ignored or realised as
sleeps, depending on configuration.  Code that wants its work accounted
calls ``executor.compute(cost)`` at the point the work happens.
"""

from __future__ import annotations

import abc
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Sequence

from repro.executor.future import Future
from repro.obs.trace import NULL_RECORDER, TraceRecorder
from repro.resilience.cancel import CancelToken

__all__ = ["Executor", "ExecutorShutdown"]


class ExecutorShutdown(RuntimeError):
    """Submit after shutdown, or a task stranded by a non-draining one."""


class Executor(abc.ABC):
    """Common interface of inline, threaded and simulated execution."""

    #: number of processing units this executor models or uses
    cores: int = 1

    #: observability recorder (see :mod:`repro.obs`); backends set this
    #: from their ``trace=`` argument, defaulting to the disabled
    #: :data:`~repro.obs.trace.NULL_RECORDER` so instrumentation is free
    #: unless a recorder is installed.  Layers above (ptask, pyjama)
    #: emit through the same recorder, keeping one timeline per run.
    trace: TraceRecorder = NULL_RECORDER

    @abc.abstractmethod
    def submit(
        self,
        fn: Callable[..., Any],
        *args: Any,
        cost: float | None = None,
        name: str = "",
        after: Sequence[Future] = (),
        cancel: CancelToken | None = None,
        deadline: float | None = None,
        **kwargs: Any,
    ) -> Future:
        """Schedule ``fn(*args, **kwargs)`` as a task.

        ``cost``: declared work in reference-seconds (for the simulated
        backend); ``None`` means "unknown" — the task still runs, it just
        contributes only whatever it reports via :meth:`compute`.

        ``after``: futures that must complete before this task starts.
        A *cancelled* dependency cancels the dependent task (its own
        cancellation cascades further); a *failed* one fails it.

        ``cancel``: a :class:`~repro.resilience.CancelToken`; cancelling
        it cancels the future if the task has not started, and the token
        is installed ambiently (:func:`repro.resilience.current_token`)
        while the body runs so cooperative code can stop early.

        ``deadline``: seconds from submission the task must *start*
        within; an overdue task is cancelled with
        :class:`~repro.resilience.DeadlineExceeded` rather than silently
        abandoned.  On the eager backends (inline, sim) only a
        non-positive deadline can trigger, since tasks start at submit.
        """

    @abc.abstractmethod
    def compute(self, cost: float) -> None:
        """Charge ``cost`` reference-seconds of work to the current task."""

    @abc.abstractmethod
    def critical(self, name: str = "default") -> Any:
        """Context manager serialising a named critical section."""

    @abc.abstractmethod
    def barrier(self, key: str, parties: int) -> None:
        """Rendezvous of ``parties`` tasks on the named barrier.

        Barriers are cyclic: the same key can be reused for successive
        rendezvous of the same team.
        """

    @abc.abstractmethod
    def task_id(self) -> int:
        """Identity of the currently executing task (0 = the main program).

        Task identity is what task-local storage and the task-safe
        collections key on — distinct from thread identity, because one
        thread executes many tasks and (with helping) nests them.
        """

    def shutdown(self, drain: bool = True) -> None:
        """Release any resources; idempotent.  Default: nothing to do.

        ``drain=True`` finishes already-queued work before returning;
        ``drain=False`` completes every queued-but-unstarted task's
        future with :class:`ExecutorShutdown` so no waiter blocks
        forever.  Backends without queues accept and ignore the flag.
        """

    def signal(self, name: str, value: Any = True) -> None:
        """Broadcast an out-of-band named flag to wherever tasks run.

        In-process backends need nothing — task bodies see the caller's
        globals already — so the default is a no-op.  The processes
        backend forwards the signal over its cancel pipes and worker
        processes record it via :func:`repro.obs.rtrace.set_worker_signal`
        (the serving gateway uses this to switch per-request execution
        tracing on inside workers).  Best-effort and fire-and-forget:
        callers must not rely on delivery ordering with queued tasks.
        """

    # -- conveniences shared by all backends --------------------------------

    def submit_many(
        self,
        fn: Callable[..., Any],
        arg_tuples: Sequence[Sequence[Any]],
        *,
        costs: Sequence[float] | None = None,
        name: str = "batch",
    ) -> list[Future]:
        """Submit ``fn(*args)`` for each argument tuple; futures in order.

        Semantically identical to a loop of :meth:`submit` — this default
        *is* that loop — but backends may override it as a fast path that
        amortises per-submit overhead (the thread pool takes its queue
        lock once and wakes workers once for the whole group).  The
        serving gateway dispatches micro-batches through here.
        """
        arg_tuples = list(arg_tuples)
        if costs is not None and len(costs) != len(arg_tuples):
            raise ValueError(
                f"costs has {len(costs)} entries for {len(arg_tuples)} tasks"
            )
        futures = []
        for i, args in enumerate(arg_tuples):
            cost = costs[i] if costs is not None else None
            futures.append(self.submit(fn, *args, cost=cost, name=f"{name}[{i}]"))
        return futures

    def map(
        self,
        fn: Callable[..., Any],
        items: Sequence[Any],
        cost_fn: Callable[[Any], float] | None = None,
        name: str = "map",
    ) -> list[Future]:
        """Submit one task per item; returns futures in item order."""
        futures = []
        for i, item in enumerate(items):
            cost = cost_fn(item) if cost_fn is not None else None
            futures.append(self.submit(fn, item, cost=cost, name=f"{name}[{i}]"))
        return futures

    def wait_all(self, futures: Sequence[Future]) -> list[Any]:
        """Block until all futures complete; return results in order.

        Raises the first exception encountered (in future order).
        """
        return [f.result() for f in futures]

    @contextmanager
    def _null_context(self) -> Iterator[None]:
        yield

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()
