"""A thread-safe future usable by every executor backend.

Unlike :mod:`concurrent.futures`, completion callbacks here are the
mechanism the Parallel Task dependence manager builds on, so their
contract is strict: a callback added after completion runs immediately on
the caller; callbacks added before completion run exactly once, on the
completing thread, in registration order.

Lifecycle
---------
A future moves through ``pending -> running -> done | failed``, or is
short-circuited to ``cancelled`` while still pending.  Cancellation is
*cooperative*: :meth:`Future.cancel` only succeeds before a worker claims
the task via :meth:`Future.try_start` — a task that has started runs to
completion (it may observe its :class:`~repro.resilience.CancelToken`
and stop itself, but the future then completes normally/with an error).
A cancelled future is *done*: waiters are released with a
:class:`CancelledError` and done-callbacks fire, which is how
cancellation propagates to dependent tasks.
"""

from __future__ import annotations

import copy
import threading
from typing import Any, Callable

from repro.resilience.cancel import CancelledError

__all__ = ["Future", "FutureError", "CancelledError"]

_PENDING = "pending"
_RUNNING = "running"
_DONE = "done"
_FAILED = "failed"
_CANCELLED = "cancelled"

#: states in which the future's outcome is not yet known
_INCOMPLETE = (_PENDING, _RUNNING)


class FutureError(RuntimeError):
    """Misuse of a future (double completion, reading a pending result)."""


def _per_waiter_copy(exc: BaseException) -> BaseException:
    """A shallow copy of ``exc`` safe to raise to one waiter.

    Raising an exception instance mutates it (the interpreter grows its
    ``__traceback__`` with the raise site), so concurrent waiters on
    different threads must not re-raise the one stored instance.  The
    copy shares the original traceback chain and preserves the
    cause/context links; exceptions that cannot be copied fall back to
    the shared instance (correct message, racy traceback — the best we
    can do).
    """
    try:
        clone = copy.copy(exc)
    except Exception:
        return exc
    if clone is exc or type(clone) is not type(exc):
        return exc
    clone.__cause__ = exc.__cause__
    clone.__context__ = exc.__context__
    clone.__suppress_context__ = exc.__suppress_context__
    return clone.with_traceback(exc.__traceback__)


class Future:
    """Write-once container for a task's eventual result."""

    __slots__ = ("_cond", "_state", "_value", "_exception", "_callbacks", "name", "meta")

    def __init__(self, name: str = "") -> None:
        self._cond = threading.Condition()
        self._state = _PENDING
        self._value: Any = None
        self._exception: BaseException | None = None
        self._callbacks: list[Callable[["Future"], None]] = []
        self.name = name
        #: backend-private annotations (e.g. the sim executor stores the
        #: task's final segment id here).
        self.meta: dict[str, Any] = {}

    # -- completion (producer side) ----------------------------------------

    def set_result(self, value: Any) -> None:
        self._complete(_DONE, value, None)

    def set_exception(self, exception: BaseException) -> None:
        if not isinstance(exception, BaseException):
            raise TypeError(f"expected an exception instance, got {exception!r}")
        self._complete(_FAILED, None, exception)

    def _complete(self, state: str, value: Any, exc: BaseException | None) -> None:
        with self._cond:
            if self._state not in _INCOMPLETE:
                raise FutureError(
                    f"future {self.name!r} completed twice (was {self._state})"
                )
            self._state = state
            self._value = value
            self._exception = exc
            callbacks, self._callbacks = self._callbacks, []
            self._cond.notify_all()
        for cb in callbacks:
            cb(self)

    def fail_if_pending(self, exception: BaseException) -> bool:
        """Complete with ``exception`` iff still pending; False otherwise.

        The atomic form executors use when failing *stranded* work (e.g.
        ``shutdown(drain=False)``) that may be racing an external
        :meth:`cancel` — exactly one of the two wins, never both.
        """
        with self._cond:
            if self._state != _PENDING:
                return False
            self._state = _FAILED
            self._exception = exception
            callbacks, self._callbacks = self._callbacks, []
            self._cond.notify_all()
        for cb in callbacks:
            cb(self)
        return True

    # -- cancellation --------------------------------------------------------

    def cancel(self, reason: str | BaseException | None = None) -> bool:
        """Cancel the future if its task has not started; True on success.

        ``reason`` may be a message fragment or an exception instance
        (e.g. :class:`~repro.resilience.DeadlineExceeded`) to surface to
        waiters instead of the default :class:`CancelledError`.  A
        successful cancel completes the future: waiters wake with the
        cancellation exception and done-callbacks run — that is what
        cascades cancellation through dependence managers.
        """
        with self._cond:
            if self._state != _PENDING:
                return False
            self._state = _CANCELLED
            if isinstance(reason, BaseException):
                self._exception = reason
            else:
                detail = f": {reason}" if reason else ""
                self._exception = CancelledError(
                    f"future {self.name!r} was cancelled{detail}"
                )
            callbacks, self._callbacks = self._callbacks, []
            self._cond.notify_all()
        for cb in callbacks:
            cb(self)
        return True

    def try_start(self) -> bool:
        """Claim the task for execution (pending -> running); False if the
        future was cancelled (or already claimed) — the worker-side half
        of the cooperative cancellation protocol."""
        with self._cond:
            if self._state != _PENDING:
                return False
            self._state = _RUNNING
            return True

    # -- consumption (consumer side) ----------------------------------------

    def done(self) -> bool:
        with self._cond:
            return self._state not in _INCOMPLETE

    def running(self) -> bool:
        with self._cond:
            return self._state == _RUNNING

    def cancelled(self) -> bool:
        with self._cond:
            return self._state == _CANCELLED

    def exception(self, timeout: float | None = None) -> BaseException | None:
        """The stored exception (the shared instance, not a copy), or None.

        For a cancelled future this *returns* the cancellation exception
        rather than raising it, so dependence managers can branch on
        :meth:`cancelled` without try/except.
        """
        self._wait(timeout)
        return self._exception

    def result(self, timeout: float | None = None) -> Any:
        self._wait(timeout)
        if self._exception is not None:
            # Per-waiter copy: concurrent result() calls on different
            # threads must not grow one shared instance's traceback.
            raise _per_waiter_copy(self._exception)
        return self._value

    def peek(self) -> Any:
        """Result if done, else raise :class:`FutureError` (non-blocking)."""
        with self._cond:
            if self._state in _INCOMPLETE:
                raise FutureError(f"future {self.name!r} is still pending")
        return self.result(timeout=0)

    def _wait(self, timeout: float | None) -> None:
        with self._cond:
            if self._state in _INCOMPLETE:
                if not self._cond.wait_for(
                    lambda: self._state not in _INCOMPLETE, timeout=timeout
                ):
                    raise TimeoutError(f"future {self.name!r} not done after {timeout}s")

    def add_done_callback(self, cb: Callable[["Future"], None]) -> None:
        run_now = False
        with self._cond:
            if self._state in _INCOMPLETE:
                self._callbacks.append(cb)
            else:
                run_now = True
        if run_now:
            cb(self)

    def __repr__(self) -> str:
        return f"Future({self.name!r}, {self._state})"
