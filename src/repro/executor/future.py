"""A thread-safe future usable by every executor backend.

Unlike :mod:`concurrent.futures`, completion callbacks here are the
mechanism the Parallel Task dependence manager builds on, so their
contract is strict: a callback added after completion runs immediately on
the caller; callbacks added before completion run exactly once, on the
completing thread, in registration order.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

__all__ = ["Future", "FutureError"]

_PENDING = "pending"
_DONE = "done"
_FAILED = "failed"


class FutureError(RuntimeError):
    """Misuse of a future (double completion, reading a pending result)."""


class Future:
    """Write-once container for a task's eventual result."""

    __slots__ = ("_cond", "_state", "_value", "_exception", "_callbacks", "name", "meta")

    def __init__(self, name: str = "") -> None:
        self._cond = threading.Condition()
        self._state = _PENDING
        self._value: Any = None
        self._exception: BaseException | None = None
        self._callbacks: list[Callable[["Future"], None]] = []
        self.name = name
        #: backend-private annotations (e.g. the sim executor stores the
        #: task's final segment id here).
        self.meta: dict[str, Any] = {}

    # -- completion (producer side) ----------------------------------------

    def set_result(self, value: Any) -> None:
        self._complete(_DONE, value, None)

    def set_exception(self, exception: BaseException) -> None:
        if not isinstance(exception, BaseException):
            raise TypeError(f"expected an exception instance, got {exception!r}")
        self._complete(_FAILED, None, exception)

    def _complete(self, state: str, value: Any, exc: BaseException | None) -> None:
        with self._cond:
            if self._state != _PENDING:
                raise FutureError(f"future {self.name!r} completed twice")
            self._state = state
            self._value = value
            self._exception = exc
            callbacks, self._callbacks = self._callbacks, []
            self._cond.notify_all()
        for cb in callbacks:
            cb(self)

    # -- consumption (consumer side) ----------------------------------------

    def done(self) -> bool:
        with self._cond:
            return self._state != _PENDING

    def cancelled(self) -> bool:
        return False  # cancellation is not part of this model

    def exception(self, timeout: float | None = None) -> BaseException | None:
        self._wait(timeout)
        return self._exception

    def result(self, timeout: float | None = None) -> Any:
        self._wait(timeout)
        if self._exception is not None:
            raise self._exception
        return self._value

    def peek(self) -> Any:
        """Result if done, else raise :class:`FutureError` (non-blocking)."""
        with self._cond:
            if self._state == _PENDING:
                raise FutureError(f"future {self.name!r} is still pending")
        return self.result(timeout=0)

    def _wait(self, timeout: float | None) -> None:
        with self._cond:
            if self._state == _PENDING:
                if not self._cond.wait_for(lambda: self._state != _PENDING, timeout=timeout):
                    raise TimeoutError(f"future {self.name!r} not done after {timeout}s")

    def add_done_callback(self, cb: Callable[["Future"], None]) -> None:
        run_now = False
        with self._cond:
            if self._state == _PENDING:
                self._callbacks.append(cb)
            else:
                run_now = True
        if run_now:
            cb(self)

    def __repr__(self) -> str:
        return f"Future({self.name!r}, {self._state})"
