"""A thread-safe future usable by every executor backend.

Unlike :mod:`concurrent.futures`, completion callbacks here are the
mechanism the Parallel Task dependence manager builds on, so their
contract is strict: a callback added after completion runs immediately on
the caller; callbacks added before completion run exactly once, on the
completing thread, in registration order.

Lifecycle
---------
A future moves through ``pending -> running -> done | failed``, or is
short-circuited to ``cancelled`` while still pending.  Cancellation is
*cooperative*: :meth:`Future.cancel` only succeeds before a worker claims
the task via :meth:`Future.try_start` — a task that has started runs to
completion (it may observe its :class:`~repro.resilience.CancelToken`
and stop itself, but the future then completes normally/with an error).
A cancelled future is *done*: waiters are released with a
:class:`CancelledError` and done-callbacks fire, which is how
cancellation propagates to dependent tasks.

Performance
-----------
Futures are the per-task allocation of every executor, so construction
and completion sit on the pool's hottest path.  Three choices keep them
cheap without weakening the contract above:

* a plain :class:`threading.Lock` guards state transitions — a
  ``Condition`` (the previous design) allocates a second lock and two
  deques per future, an order of magnitude more construction work;
* blocking waiters are served by a :class:`threading.Event` allocated
  *lazily* on the first ``result()``/``exception()`` that actually has
  to block — the common pool case (completion observed via ``done()``
  polling or callbacks) never allocates it.  The event is set-once, so
  any number of late waiters share it safely;
* state reads (``done``/``running``/``cancelled`` and the completion
  fast path of ``result``) are lock-free: ``_state`` is a single
  attribute written under the lock and read atomically under the GIL,
  and the value/exception slots are always written *before* the state
  flips to a completed one.
"""

from __future__ import annotations

import copy
import threading
from typing import Any, Callable

from repro.resilience.cancel import CancelledError

__all__ = ["Future", "FutureError", "CancelledError"]

_PENDING = "pending"
_RUNNING = "running"
_DONE = "done"
_FAILED = "failed"
_CANCELLED = "cancelled"

#: states in which the future's outcome is not yet known
_INCOMPLETE = (_PENDING, _RUNNING)


class FutureError(RuntimeError):
    """Misuse of a future (double completion, reading a pending result)."""


def _per_waiter_copy(exc: BaseException) -> BaseException:
    """A shallow copy of ``exc`` safe to raise to one waiter.

    Raising an exception instance mutates it (the interpreter grows its
    ``__traceback__`` with the raise site), so concurrent waiters on
    different threads must not re-raise the one stored instance.  The
    copy shares the original traceback chain and preserves the
    cause/context links; exceptions that cannot be copied fall back to
    the shared instance (correct message, racy traceback — the best we
    can do).
    """
    try:
        clone = copy.copy(exc)
    except Exception:
        return exc
    if clone is exc or type(clone) is not type(exc):
        return exc
    clone.__cause__ = exc.__cause__
    clone.__context__ = exc.__context__
    clone.__suppress_context__ = exc.__suppress_context__
    return clone.with_traceback(exc.__traceback__)


class Future:
    """Write-once container for a task's eventual result."""

    __slots__ = (
        "_lock",
        "_state",
        "_value",
        "_exception",
        "_waiter",
        "_callbacks",
        "name",
        "meta",
    )

    def __init__(self, name: str = "") -> None:
        self._lock = threading.Lock()
        self._state = _PENDING
        self._value: Any = None
        self._exception: BaseException | None = None
        #: lazily allocated threading.Event; set exactly once on completion
        self._waiter: threading.Event | None = None
        #: lazily allocated callback list (most futures never register one)
        self._callbacks: list[Callable[["Future"], None]] | None = None
        self.name = name
        #: backend-private annotations (e.g. the sim executor stores the
        #: task's final segment id here).
        self.meta: dict[str, Any] = {}

    # -- completion (producer side) ----------------------------------------

    def set_result(self, value: Any) -> None:
        self._complete(_DONE, value, None)

    def set_exception(self, exception: BaseException) -> None:
        if not isinstance(exception, BaseException):
            raise TypeError(f"expected an exception instance, got {exception!r}")
        self._complete(_FAILED, None, exception)

    def _complete(self, state: str, value: Any, exc: BaseException | None) -> None:
        with self._lock:
            if self._state not in _INCOMPLETE:
                raise FutureError(
                    f"future {self.name!r} completed twice (was {self._state})"
                )
            self._value = value
            self._exception = exc
            self._state = state  # last: readers branch on state lock-free
            callbacks, self._callbacks = self._callbacks, None
            waiter = self._waiter
        if waiter is not None:
            waiter.set()
        if callbacks:
            for cb in callbacks:
                cb(self)

    def fail_if_pending(self, exception: BaseException) -> bool:
        """Complete with ``exception`` iff still pending; False otherwise.

        The atomic form executors use when failing *stranded* work (e.g.
        ``shutdown(drain=False)``) that may be racing an external
        :meth:`cancel` — exactly one of the two wins, never both.
        """
        with self._lock:
            if self._state != _PENDING:
                return False
            self._exception = exception
            self._state = _FAILED
            callbacks, self._callbacks = self._callbacks, None
            waiter = self._waiter
        if waiter is not None:
            waiter.set()
        if callbacks:
            for cb in callbacks:
                cb(self)
        return True

    # -- cancellation --------------------------------------------------------

    def cancel(self, reason: str | BaseException | None = None) -> bool:
        """Cancel the future if its task has not started; True on success.

        ``reason`` may be a message fragment or an exception instance
        (e.g. :class:`~repro.resilience.DeadlineExceeded`) to surface to
        waiters instead of the default :class:`CancelledError`.  A
        successful cancel completes the future: waiters wake with the
        cancellation exception and done-callbacks run — that is what
        cascades cancellation through dependence managers.
        """
        with self._lock:
            if self._state != _PENDING:
                return False
            if isinstance(reason, BaseException):
                self._exception = reason
            else:
                detail = f": {reason}" if reason else ""
                self._exception = CancelledError(
                    f"future {self.name!r} was cancelled{detail}"
                )
            self._state = _CANCELLED
            callbacks, self._callbacks = self._callbacks, None
            waiter = self._waiter
        if waiter is not None:
            waiter.set()
        if callbacks:
            for cb in callbacks:
                cb(self)
        return True

    def try_start(self) -> bool:
        """Claim the task for execution (pending -> running); False if the
        future was cancelled (or already claimed) — the worker-side half
        of the cooperative cancellation protocol."""
        with self._lock:
            if self._state != _PENDING:
                return False
            self._state = _RUNNING
            return True

    # -- consumption (consumer side) ----------------------------------------

    def done(self) -> bool:
        return self._state not in _INCOMPLETE

    def running(self) -> bool:
        return self._state == _RUNNING

    def cancelled(self) -> bool:
        return self._state == _CANCELLED

    def exception(self, timeout: float | None = None) -> BaseException | None:
        """The stored exception (the shared instance, not a copy), or None.

        For a cancelled future this *returns* the cancellation exception
        rather than raising it, so dependence managers can branch on
        :meth:`cancelled` without try/except.
        """
        self._wait(timeout)
        return self._exception

    def result(self, timeout: float | None = None) -> Any:
        if self._state in _INCOMPLETE:
            self._wait(timeout)
        exc = self._exception
        if exc is not None:
            # Per-waiter copy: concurrent result() calls on different
            # threads must not grow one shared instance's traceback.
            raise _per_waiter_copy(exc)
        return self._value

    def peek(self) -> Any:
        """Result if done, else raise :class:`FutureError` (non-blocking)."""
        if self._state in _INCOMPLETE:
            raise FutureError(f"future {self.name!r} is still pending")
        return self.result(timeout=0)

    def _wait(self, timeout: float | None) -> None:
        if self._state not in _INCOMPLETE:
            return
        with self._lock:
            if self._state not in _INCOMPLETE:
                return
            waiter = self._waiter
            if waiter is None:
                waiter = self._waiter = threading.Event()
        if not waiter.wait(timeout):
            raise TimeoutError(f"future {self.name!r} not done after {timeout}s")

    def add_done_callback(self, cb: Callable[["Future"], None]) -> None:
        with self._lock:
            if self._state in _INCOMPLETE:
                callbacks = self._callbacks
                if callbacks is None:
                    callbacks = self._callbacks = []
                callbacks.append(cb)
                return
        cb(self)

    def __repr__(self) -> str:
        return f"Future({self.name!r}, {self._state})"
