"""Shared-memory data plane for the processes backend.

Shipping a large NumPy array to a worker process through a pickle pipe
costs two full copies plus the pipe write — for the matmul panels and
image workloads that dominate the real-speedup demos, the transport
would eat the speedup.  This module moves bulk array payloads through
``multiprocessing.shared_memory`` instead:

* the parent :class:`ShmArena` *exports* each distinct array once into a
  named segment (cached by object identity, so submitting 64 tasks over
  one corpus copies it once), and :func:`encode_payload` rewrites
  args/kwargs so every qualifying ``ndarray`` becomes a tiny picklable
  :class:`ShmRef` handle;
* the worker *attaches* the named segment and reconstructs a zero-copy
  read-only view for the task body (:class:`ShmAttachments`), closing
  its mapping when the task finishes;
* worker *results* go the other way through one-shot segments: the
  worker creates/copies/closes, the parent attaches/copies/unlinks
  (:func:`export_oneshot` / :func:`consume_oneshot`).

Arrays below :data:`DEFAULT_THRESHOLD` bytes ride the normal pickle path
— a segment has fixed syscall/mmap overhead that only pays off for bulk
data.

CPython < 3.13 registers every ``SharedMemory`` with the per-process
``resource_tracker``, which then "helpfully" unlinks segments when *any*
process that touched them exits — fatal for segments whose lifetime is
managed across the parent/worker boundary.  :func:`open_untracked`
unregisters immediately after open, making lifetime fully explicit: the
arena unlinks its exports at ``close()``, one-shot segments are unlinked
by the consuming parent.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Any

import numpy as np

__all__ = [
    "DEFAULT_THRESHOLD",
    "ShmArena",
    "ShmAttachments",
    "ShmRef",
    "consume_oneshot",
    "decode_payload",
    "encode_payload",
    "export_oneshot",
    "open_untracked",
    "unlink_untracked",
]

#: arrays smaller than this (bytes) are pickled rather than exported
DEFAULT_THRESHOLD = 32 * 1024


@dataclass(frozen=True)
class ShmRef:
    """A picklable handle to an ndarray parked in a named shm segment."""

    name: str
    shape: tuple[int, ...]
    dtype: str
    oneshot: bool = False  # worker-created result segment: consumer unlinks


_open_lock = threading.Lock()


def open_untracked(name: str | None = None, create: bool = False, size: int = 0):
    """``SharedMemory`` whose lifetime this module manages explicitly.

    On 3.13+ ``track=False`` does this natively.  Earlier interpreters
    register with the ``resource_tracker`` inside ``__init__`` with no
    opt-out, and unregistering afterwards is unreliable (the tracker's
    cache is a set shared by every process, so concurrent attach/detach
    of one segment double-removes and spews KeyError tracebacks) — so we
    briefly stub ``register`` out instead, under a lock so concurrent
    opens in one process cannot restore it early.
    """
    try:
        return shared_memory.SharedMemory(name=name, create=create, size=size, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        pass
    with _open_lock:
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name, create=create, size=size)
        finally:
            resource_tracker.register = original


def unlink_untracked(shm: Any) -> None:
    """Unlink a segment opened via :func:`open_untracked`; best effort.

    Pre-3.13 ``unlink()`` unconditionally messages the tracker to
    unregister a name it never saw (we suppressed the register), making
    the tracker daemon print KeyError tracebacks — stub the send out the
    same way.  A segment already unlinked elsewhere is not an error.
    """
    with _open_lock:
        original = resource_tracker.unregister
        resource_tracker.unregister = lambda *args, **kwargs: None
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
        finally:
            resource_tracker.unregister = original


class ShmArena:
    """Parent-side export cache: one segment per distinct array object.

    Keyed by ``id(array)`` *while holding a strong reference* to the
    array, so an id can never be recycled into a stale cache hit.  The
    arena owns its segments: :meth:`close` unmaps and unlinks them all,
    which is safe once workers have exited (worker mappings are closed
    per task).
    """

    def __init__(self, threshold: int = DEFAULT_THRESHOLD) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self._exports: dict[int, tuple[ShmRef, Any, np.ndarray]] = {}
        self.bytes_exported = 0

    def export(self, arr: np.ndarray) -> ShmRef:
        """Park ``arr`` in a segment (cached); returns its handle."""
        cached = self._exports.get(id(arr))
        if cached is not None:
            return cached[0]
        data = np.ascontiguousarray(arr)
        shm = open_untracked(create=True, size=max(1, data.nbytes))
        view = np.ndarray(data.shape, dtype=data.dtype, buffer=shm.buf)
        view[...] = data
        ref = ShmRef(name=shm.name, shape=tuple(data.shape), dtype=str(data.dtype))
        # Keep ``arr`` (not ``data``) alive: its id is the cache key.
        self._exports[id(arr)] = (ref, shm, arr)
        self.bytes_exported += data.nbytes
        return ref

    def maybe_export(self, obj: Any) -> Any:
        """``obj`` itself, or its :class:`ShmRef` when it is a big array."""
        if isinstance(obj, np.ndarray) and obj.nbytes >= self.threshold:
            return self.export(obj)
        return obj

    @property
    def segments(self) -> int:
        return len(self._exports)

    def close(self) -> None:
        """Unmap and unlink every exported segment; idempotent."""
        exports, self._exports = self._exports, {}
        for _ref, shm, _arr in exports.values():
            try:
                shm.close()
                unlink_untracked(shm)
            except Exception:
                pass  # best effort: a vanished segment is already gone

    def __repr__(self) -> str:
        return f"ShmArena(segments={self.segments}, bytes={self.bytes_exported})"


class ShmAttachments:
    """Worker-side holder of the segments one task has attached.

    Views handed to the task body alias the mapping, so the mapping must
    outlive the body — the worker calls :meth:`close` after the task
    returns (never ``unlink``: the parent owns argument segments).
    """

    def __init__(self) -> None:
        self._open: list[Any] = []

    def attach(self, ref: ShmRef) -> np.ndarray:
        shm = open_untracked(name=ref.name)
        self._open.append(shm)
        arr = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=shm.buf)
        arr.flags.writeable = False  # arguments are shared: enforce read-only
        return arr

    def close(self) -> None:
        segments, self._open = self._open, []
        for shm in segments:
            try:
                shm.close()
            except Exception:
                pass


def encode_payload(obj: Any, arena: ShmArena) -> Any:
    """Recursively replace qualifying ndarrays in ``obj`` with refs.

    Walks lists/tuples/dicts (the shapes task args take); anything else
    pickles as-is.  Returns a structure safe to put on an mp queue.
    """
    if isinstance(obj, np.ndarray):
        return arena.maybe_export(obj)
    if isinstance(obj, tuple):
        return tuple(encode_payload(item, arena) for item in obj)
    if isinstance(obj, list):
        return [encode_payload(item, arena) for item in obj]
    if isinstance(obj, dict):
        return {key: encode_payload(value, arena) for key, value in obj.items()}
    return obj


def decode_payload(obj: Any, attachments: ShmAttachments) -> Any:
    """Inverse of :func:`encode_payload`: refs become zero-copy views."""
    if isinstance(obj, ShmRef):
        if obj.oneshot:
            return consume_oneshot(obj)
        return attachments.attach(obj)
    if isinstance(obj, tuple):
        return tuple(decode_payload(item, attachments) for item in obj)
    if isinstance(obj, list):
        return [decode_payload(item, attachments) for item in obj]
    if isinstance(obj, dict):
        return {key: decode_payload(value, attachments) for key, value in obj.items()}
    return obj


def export_oneshot(obj: Any, threshold: int = DEFAULT_THRESHOLD) -> Any:
    """Producer side of result transport: big arrays → one-shot segments.

    The producer (a worker returning a result) creates the segment,
    copies the array in and closes its own mapping; the segment persists
    until the consumer unlinks it.  Small/non-array results are returned
    unchanged and ride the pickle path.
    """
    if isinstance(obj, np.ndarray):
        if obj.nbytes < threshold:
            return obj
        data = np.ascontiguousarray(obj)
        shm = open_untracked(create=True, size=max(1, data.nbytes))
        view = np.ndarray(data.shape, dtype=data.dtype, buffer=shm.buf)
        view[...] = data
        del view
        ref = ShmRef(name=shm.name, shape=tuple(data.shape), dtype=str(data.dtype), oneshot=True)
        shm.close()
        return ref
    if isinstance(obj, tuple):
        return tuple(export_oneshot(item, threshold) for item in obj)
    if isinstance(obj, list):
        return [export_oneshot(item, threshold) for item in obj]
    if isinstance(obj, dict):
        return {key: export_oneshot(value, threshold) for key, value in obj.items()}
    return obj


def consume_oneshot(obj: Any) -> Any:
    """Consumer side: materialise one-shot refs and unlink their segments."""
    if isinstance(obj, ShmRef):
        shm = open_untracked(name=obj.name)
        try:
            view = np.ndarray(obj.shape, dtype=np.dtype(obj.dtype), buffer=shm.buf)
            result = np.array(view, copy=True)
            del view
        finally:
            shm.close()
            try:
                unlink_untracked(shm)
            except Exception:
                pass
        return result
    if isinstance(obj, tuple):
        return tuple(consume_oneshot(item) for item in obj)
    if isinstance(obj, list):
        return [consume_oneshot(item) for item in obj]
    if isinstance(obj, dict):
        return {key: consume_oneshot(value) for key, value in obj.items()}
    return obj
