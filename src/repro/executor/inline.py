"""Sequential reference executor: tasks run immediately on the caller.

This backend defines the *value semantics* the other backends must agree
with: any deterministic task program produces identical results inline,
on the thread pool and under simulation.  The equivalence tests in
``tests/executor/`` and the app test suites rely on this.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Sequence

from repro.executor.base import Executor
from repro.executor.future import Future
from repro.obs import rtrace as _rtrace
from repro.obs.trace import TraceRecorder, resolve_recorder
from repro.resilience.cancel import CancelToken, DeadlineExceeded, scoped_token
from repro.resilience.faults import FaultPlan, InjectedFault, resolve_faults

__all__ = ["InlineExecutor"]


class InlineExecutor(Executor):
    """Runs every task synchronously at submit time.

    .. note:: prefer ``repro.executor.create("inline")`` over this
       constructor; the direct form stays supported for backward
       compatibility.
    """

    cores = 1

    def __init__(
        self,
        trace: TraceRecorder | None = None,
        faults: FaultPlan | None = None,
    ) -> None:
        self._task_counter = 0
        self._current_task = 0
        self._barrier_counts: dict[str, int] = {}
        self._lock = threading.Lock()
        self.trace = resolve_recorder(trace)
        self.faults = resolve_faults(faults)

    def submit(
        self,
        fn: Callable[..., Any],
        *args: Any,
        cost: float | None = None,
        name: str = "",
        after: Sequence[Future] = (),
        cancel: CancelToken | None = None,
        deadline: float | None = None,
        **kwargs: Any,
    ) -> Future:
        """Run ``fn`` right now on the caller; the future is already done.

        Eager execution leaves a narrow cancellation window: only a token
        cancelled *before* submit (or a non-positive ``deadline``) can
        stop the task, since it starts immediately.
        """
        if deadline is not None and deadline < 0:
            raise ValueError(f"deadline must be >= 0, got {deadline}")
        future = Future(name=name or getattr(fn, "__name__", "task"))
        for dep in after:
            if not dep.done():
                # Inline execution runs everything to completion at submit
                # time, so an unfinished dependency is a programming error
                # (a cycle or a future from another executor).
                raise RuntimeError(f"inline task {name!r} depends on unfinished future {dep.name!r}")
            if dep.cancelled():
                # Cancellation cascades: a cancelled dep cancels the
                # dependent (same contract as the thread pool).
                future.cancel(f"dependency {dep.name!r} was cancelled")
                self._emit_cancel(future)
                return future
            exc = dep.exception()
            if exc is not None:
                # A failed dependency fails the dependent task without
                # running it — the same contract as the thread pool.
                future.set_exception(exc)
                return future
        if cancel is not None and cancel.cancelled:
            future.cancel(f"token {cancel.name!r} cancelled")
            self._emit_cancel(future)
            return future
        if deadline == 0:
            future.cancel(DeadlineExceeded(f"task {future.name!r} missed its deadline"))
            self._emit_cancel(future)
            return future
        self._task_counter += 1
        tid = self._task_counter
        future.meta["tid"] = tid
        future.try_start()
        if self.faults is not None and self.faults.should_fail_task("inline", tid):
            if self.trace.enabled:
                self.trace.event("fault", future.name, task_id=tid, worker=0)
                self.trace.count("inline.faults_injected")
            future.set_exception(
                InjectedFault(f"task {future.name!r} failed by fault plan")
            )
            return future
        prev = self._current_task
        self._current_task = tid
        trace = self.trace
        if trace.enabled:
            # ``parent`` is the spawning task (0 = main), so the analyzer
            # can rebuild the spawn tree even without submit instants.
            dep_tasks = [d.meta["tid"] for d in after if "tid" in d.meta]
            trace.event(
                "task", future.name, phase="B", task_id=tid, worker=0,
                parent=prev, dep_tasks=dep_tasks,
            )
            trace.count("inline.tasks")
        rt_t0 = time.monotonic() if _rtrace.active() is not None else None
        try:
            with scoped_token(cancel):
                value = fn(*args, **kwargs)
        except Exception as exc:
            if rt_t0 is not None:
                # stamp before completion: done-callbacks read the meta
                future.meta["rt_span"] = (rt_t0, time.monotonic(), 0)
            future.set_exception(exc)
        else:
            if rt_t0 is not None:
                future.meta["rt_span"] = (rt_t0, time.monotonic(), 0)
            future.set_result(value)
        finally:
            self._current_task = prev
            if trace.enabled:
                trace.event("task", future.name, phase="E", task_id=tid, worker=0)
        return future

    def _emit_cancel(self, future: Future) -> None:
        if self.trace.enabled:
            self.trace.event(
                "cancel",
                future.name,
                task_id=future.meta.get("tid", 0),
                exception=type(future.exception()).__name__,
            )
            self.trace.count("inline.cancelled")

    def compute(self, cost: float) -> None:
        if cost < 0:
            raise ValueError(f"cost must be >= 0, got {cost}")
        # Inline execution does the real work already; nothing to account.

    @contextmanager
    def critical(self, name: str = "default") -> Iterator[None]:
        yield  # single-threaded: critical sections are trivially exclusive

    def barrier(self, key: str, parties: int) -> None:
        """Sequential barrier: a no-op rendezvous, but arity-checked.

        Inline execution runs team members one after another, so by the
        time member *k* reaches the barrier, members 0..k-1 have already
        passed it.  We still count arrivals so that mismatched ``parties``
        across a team is caught rather than silently ignored.
        """
        if parties < 1:
            raise ValueError(f"parties must be >= 1, got {parties}")
        n = self._barrier_counts.get(key, 0) + 1
        self._barrier_counts[key] = n % parties
        if self.trace.enabled:
            self.trace.event(
                "barrier", f"{key}:arrive", task_id=self._current_task, key=key, parties=parties
            )
            self.trace.count("inline.barrier_arrivals")

    def task_id(self) -> int:
        return self._current_task

    def __repr__(self) -> str:
        return f"InlineExecutor(tasks_run={self._task_counter})"
