"""Sequential reference executor: tasks run immediately on the caller.

This backend defines the *value semantics* the other backends must agree
with: any deterministic task program produces identical results inline,
on the thread pool and under simulation.  The equivalence tests in
``tests/executor/`` and the app test suites rely on this.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Sequence

from repro.executor.base import Executor
from repro.executor.future import Future
from repro.obs.trace import TraceRecorder, resolve_recorder

__all__ = ["InlineExecutor"]


class InlineExecutor(Executor):
    """Runs every task synchronously at submit time.

    .. note:: prefer ``repro.executor.create("inline")`` over this
       constructor; the direct form stays supported for backward
       compatibility.
    """

    cores = 1

    def __init__(self, trace: TraceRecorder | None = None) -> None:
        self._task_counter = 0
        self._current_task = 0
        self._barrier_counts: dict[str, int] = {}
        self._lock = threading.Lock()
        self.trace = resolve_recorder(trace)

    def submit(
        self,
        fn: Callable[..., Any],
        *args: Any,
        cost: float | None = None,
        name: str = "",
        after: Sequence[Future] = (),
        **kwargs: Any,
    ) -> Future:
        """Run ``fn`` right now on the caller; the future is already done."""
        future = Future(name=name or getattr(fn, "__name__", "task"))
        for dep in after:
            if not dep.done():
                # Inline execution runs everything to completion at submit
                # time, so an unfinished dependency is a programming error
                # (a cycle or a future from another executor).
                raise RuntimeError(f"inline task {name!r} depends on unfinished future {dep.name!r}")
            exc = dep.exception()
            if exc is not None:
                # A failed dependency fails the dependent task without
                # running it — the same contract as the thread pool.
                future.set_exception(exc)
                return future
        self._task_counter += 1
        tid = self._task_counter
        future.meta["tid"] = tid
        prev = self._current_task
        self._current_task = tid
        trace = self.trace
        if trace.enabled:
            # ``parent`` is the spawning task (0 = main), so the analyzer
            # can rebuild the spawn tree even without submit instants.
            dep_tasks = [d.meta["tid"] for d in after if "tid" in d.meta]
            trace.event(
                "task", future.name, phase="B", task_id=tid, worker=0,
                parent=prev, dep_tasks=dep_tasks,
            )
            trace.count("inline.tasks")
        try:
            future.set_result(fn(*args, **kwargs))
        except Exception as exc:
            future.set_exception(exc)
        finally:
            self._current_task = prev
            if trace.enabled:
                trace.event("task", future.name, phase="E", task_id=tid, worker=0)
        return future

    def compute(self, cost: float) -> None:
        if cost < 0:
            raise ValueError(f"cost must be >= 0, got {cost}")
        # Inline execution does the real work already; nothing to account.

    @contextmanager
    def critical(self, name: str = "default") -> Iterator[None]:
        yield  # single-threaded: critical sections are trivially exclusive

    def barrier(self, key: str, parties: int) -> None:
        """Sequential barrier: a no-op rendezvous, but arity-checked.

        Inline execution runs team members one after another, so by the
        time member *k* reaches the barrier, members 0..k-1 have already
        passed it.  We still count arrivals so that mismatched ``parties``
        across a team is caught rather than silently ignored.
        """
        if parties < 1:
            raise ValueError(f"parties must be >= 1, got {parties}")
        n = self._barrier_counts.get(key, 0) + 1
        self._barrier_counts[key] = n % parties
        if self.trace.enabled:
            self.trace.event(
                "barrier", f"{key}:arrive", task_id=self._current_task, key=key, parties=parties
            )
            self.trace.count("inline.barrier_arrivals")

    def task_id(self) -> int:
        return self._current_task

    def __repr__(self) -> str:
        return f"InlineExecutor(tasks_run={self._task_counter})"
