"""Execution backends shared by Parallel Task and Pyjama.

Interchangeable executors implement the same :class:`Executor`
interface; which ones exist is an open *registry*
(:mod:`repro.executor.registry`), with four built-ins:

* :class:`~repro.executor.inline.InlineExecutor` — sequential reference
  semantics (tasks run at submit time on the caller);
* :class:`~repro.executor.threads.WorkStealingPool` — real OS threads with
  per-worker work-stealing deques and blocked-join *helping* (the
  ForkJoinPool discipline), used for all concurrency-correctness tests and
  responsiveness demos;
* :class:`~repro.executor.processes.ProcessPool` — spawned worker
  *processes* with a shared-memory NumPy data plane: the only backend
  that delivers **measured** multi-core speedup (no GIL);
* :class:`~repro.executor.simulated.SimExecutor` — eager value execution
  plus virtual-time scheduling of the recorded task graph on a
  :class:`~repro.machine.spec.MachineSpec`, used for every deterministic
  speedup experiment (see DESIGN.md §2 for why).

**Construction:** use the :func:`create` factory (or its declarative twin
:class:`ExecutorConfig`) — it is the single front door that resolves core
counts, machine models, observability (``trace=``) and fault plans
uniformly across backends, and the only path that sees backends
registered at runtime::

    from repro.executor import create
    ex = create("sim", cores=16)          # virtual time
    ex = create("processes", cores=4)     # real multi-core speedup

New substrates register with :func:`register_backend` and immediately
appear in :data:`KINDS` / :func:`available` and in ``create()``'s
unknown-kind error listing.  Direct constructor imports remain supported
for backward compatibility only; prefer ``create()``.
``ThreadPoolExecutor`` is an alias of :class:`WorkStealingPool` (the name
DESIGN.md's inventory uses for the real-threads backend).
"""

from repro.executor.base import Executor, ExecutorShutdown
from repro.executor.factory import KINDS, ExecutorConfig, backend_override, create
from repro.executor.future import CancelledError, Future, FutureError
from repro.executor.inline import InlineExecutor
from repro.executor.registry import (
    Backend,
    BackendCapabilities,
    available,
    backend_aliases,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.executor.simulated import SimExecutor
from repro.executor.threads import WorkStealingPool

#: Backward/forward-compatible alias: the real-threads backend under the
#: name used by DESIGN.md's package inventory.
ThreadPoolExecutor = WorkStealingPool


def __getattr__(name):
    # ProcessPool pulls in multiprocessing machinery; defer that cost (and
    # keep spawned workers from re-importing it transitively) until asked.
    if name == "ProcessPool":
        from repro.executor.processes import ProcessPool

        return ProcessPool
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Executor",
    "ExecutorShutdown",
    "Future",
    "FutureError",
    "CancelledError",
    "InlineExecutor",
    "SimExecutor",
    "WorkStealingPool",
    "ProcessPool",
    "ThreadPoolExecutor",
    "create",
    "backend_override",
    "ExecutorConfig",
    "KINDS",
    "Backend",
    "BackendCapabilities",
    "available",
    "backend_aliases",
    "get_backend",
    "register_backend",
    "unregister_backend",
]
