"""Execution backends shared by Parallel Task and Pyjama.

Three interchangeable executors implement the same :class:`Executor`
interface:

* :class:`~repro.executor.inline.InlineExecutor` — sequential reference
  semantics (tasks run at submit time on the caller);
* :class:`~repro.executor.threads.WorkStealingPool` — real OS threads with
  per-worker work-stealing deques and blocked-join *helping* (the
  ForkJoinPool discipline), used for all concurrency-correctness tests and
  responsiveness demos;
* :class:`~repro.executor.simulated.SimExecutor` — eager value execution
  plus virtual-time scheduling of the recorded task graph on a
  :class:`~repro.machine.spec.MachineSpec`, used for every speedup
  experiment (see DESIGN.md §2 for why).
"""

from repro.executor.base import Executor
from repro.executor.future import Future
from repro.executor.inline import InlineExecutor
from repro.executor.simulated import SimExecutor
from repro.executor.threads import WorkStealingPool

__all__ = ["Executor", "Future", "InlineExecutor", "SimExecutor", "WorkStealingPool"]
