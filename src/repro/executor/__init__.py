"""Execution backends shared by Parallel Task and Pyjama.

Three interchangeable executors implement the same :class:`Executor`
interface:

* :class:`~repro.executor.inline.InlineExecutor` — sequential reference
  semantics (tasks run at submit time on the caller);
* :class:`~repro.executor.threads.WorkStealingPool` — real OS threads with
  per-worker work-stealing deques and blocked-join *helping* (the
  ForkJoinPool discipline), used for all concurrency-correctness tests and
  responsiveness demos;
* :class:`~repro.executor.simulated.SimExecutor` — eager value execution
  plus virtual-time scheduling of the recorded task graph on a
  :class:`~repro.machine.spec.MachineSpec`, used for every speedup
  experiment (see DESIGN.md §2 for why).

**Construction:** prefer the :func:`create` factory (or its declarative
twin :class:`ExecutorConfig`) over the direct constructors — it is the
single front door that resolves core counts, machine models and
observability (``trace=``) uniformly across backends::

    from repro.executor import create
    ex = create("sim", cores=16)

Direct constructor imports remain supported for backward compatibility.
``ThreadPoolExecutor`` is an alias of :class:`WorkStealingPool` (the name
DESIGN.md's inventory uses for the real-threads backend).
"""

from repro.executor.base import Executor, ExecutorShutdown
from repro.executor.factory import KINDS, ExecutorConfig, create
from repro.executor.future import CancelledError, Future, FutureError
from repro.executor.inline import InlineExecutor
from repro.executor.simulated import SimExecutor
from repro.executor.threads import WorkStealingPool

#: Backward/forward-compatible alias: the real-threads backend under the
#: name used by DESIGN.md's package inventory.
ThreadPoolExecutor = WorkStealingPool

__all__ = [
    "Executor",
    "ExecutorShutdown",
    "Future",
    "FutureError",
    "CancelledError",
    "InlineExecutor",
    "SimExecutor",
    "WorkStealingPool",
    "ThreadPoolExecutor",
    "create",
    "ExecutorConfig",
    "KINDS",
]
