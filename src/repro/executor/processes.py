"""Out-of-process executor: worker processes, real multi-core speedup.

This is the backend that closes DESIGN.md's standing fidelity gap: the
GIL serialises Python bytecode across *threads*, so
:class:`~repro.executor.threads.WorkStealingPool` demonstrates
scheduling behaviour but never measured speedup.  :class:`ProcessPool`
runs task bodies in spawned worker *processes* — each with its own
interpreter and its own GIL — so CPU-bound NumPy-ish workloads
(``apps.kernels``, ``apps.images``, chunked quicksort) show wall-clock
speedup that is measured, not simulated.

Design notes
------------
* **Same claim protocol.**  Futures are the ordinary
  :class:`~repro.executor.future.Future`: a submitted task sits in a
  parent-side ready queue (cancellable) until the feeder thread *claims*
  it via ``try_start()`` and ships it to the worker queue.  Shipping is
  bounded (``workers * prefetch`` in flight), so a genuine cancellable
  window exists even under load.
* **Cross-process cancel.**  Once shipped, a cancel becomes a message:
  the parent broadcasts on per-worker pipes
  (:class:`~repro.resilience.remote.RemoteCancelChannel`); a listener
  thread in each worker cancels the worker-local token of a running
  task, or pre-cancels one that has not started (see
  :mod:`repro.resilience.remote`).
* **Shared-memory data plane.**  Large ndarray arguments travel through
  named ``multiprocessing.shared_memory`` segments instead of the pickle
  pipe (:mod:`repro.executor.shm`); results come back the same way via
  one-shot segments.
* **Trace shards.**  Workers cannot reach the parent recorder, so each
  writes a JSONL shard timestamped on the parent's timeline; shutdown
  merges the shards back (:mod:`repro.obs.shards`), giving ``obs.analyze``
  one coherent timeline with per-worker/per-pid attribution.
* **Faults.**  The seeded :class:`~repro.resilience.FaultPlan` is frozen
  data, so it ships to workers verbatim: ``should_fail_task(pool, tid)``
  draws identically in any process, keeping chaos runs reproducible.
* **No barriers, flat tasks only.**  Executors are not picklable, so a
  task body cannot submit nested tasks; workloads decompose flat
  (``matmul_tasks``, ``quicksort_chunks``).  ``barrier()`` raises.

Workers are started with the ``spawn`` method unconditionally — it is
the only start method that is safe with threads in the parent and
portable across platforms, and it forces the spawn-safe ``__main__``
discipline the CI smoke job checks.
"""

from __future__ import annotations

import heapq
import itertools
import multiprocessing as mp
import os
import pickle
import shutil
import tempfile
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

from repro.executor import shm as shm_plane
from repro.executor.base import Executor, ExecutorShutdown
from repro.executor.future import Future
from repro.obs import rtrace
from repro.obs.shards import merge_shards, replay_into, shard_path
from repro.obs.sinks import JsonlSink
from repro.obs.trace import TraceRecorder, resolve_recorder
from repro.obs.trace import use as obs_use
from repro.resilience.cancel import CancelledError, CancelToken, DeadlineExceeded, scoped_token
from repro.resilience.faults import FaultPlan, InjectedFault, resolve_faults
from repro.resilience.remote import RemoteCancelChannel, WorkerCancelListener

__all__ = ["ProcessPool"]


@dataclass(frozen=True)
class _WorkerConfig:
    """Everything a spawned worker needs, as picklable plain data."""

    pool_name: str
    wid: int
    faults: FaultPlan | None
    shard_file: str | None
    wall_epoch: float  # parent time.time() at the recorder's t=0
    shm_threshold: int


@dataclass
class _Task:
    tid: int
    future: Future
    fn: Callable[..., Any]
    args: tuple[Any, ...]
    kwargs: dict[str, Any]
    deadline_wall: float | None = None
    token: CancelToken | None = field(default=None, repr=False)


def _portable_exception(exc: BaseException) -> BaseException:
    """``exc`` if it survives a pickle round-trip, else a plain stand-in.

    Result-queue messages are pickled; an exception type with unpicklable
    state would otherwise kill delivery and hang the waiter.
    """
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def _worker_main(cfg: _WorkerConfig, task_q: Any, result_q: Any, cancel_conn: Any) -> None:
    """Worker-process entry point (module-level: spawn needs to import it)."""
    listener = WorkerCancelListener(cancel_conn, on_signal=rtrace.set_worker_signal)
    listener.start()
    recorder = TraceRecorder(sink=JsonlSink(cfg.shard_file)) if cfg.shard_file else None
    pid = os.getpid()

    def now() -> float:
        # Same-host wall clock minus the parent's epoch: timestamps land
        # on the parent recorder's timeline, so merged shards interleave.
        return time.time() - cfg.wall_epoch

    if recorder:
        # Align the recorder's own clock too, and make it ambient so task
        # bodies (e.g. serve's run_batch_timed) can land spans in the
        # shard without threading a recorder argument through pickling.
        recorder.rebase(now())
        ambient = obs_use(recorder)
        ambient.__enter__()

    while True:
        message = task_q.get()
        if message is None:
            break
        tid, name, fn, enc_args, enc_kwargs, deadline_wall = message
        reason = listener.precancelled(tid)
        if reason is not None:
            if recorder:
                recorder.event("cancel", name, ts=now(), task_id=tid, worker=cfg.wid,
                               exception="CancelledError")
            result_q.put(("cancelled", tid, reason))
            continue
        if deadline_wall is not None and time.time() > deadline_wall:
            if recorder:
                recorder.event("cancel", name, ts=now(), task_id=tid, worker=cfg.wid,
                               exception="DeadlineExceeded")
            result_q.put(("deadline", tid, None))
            continue
        if cfg.faults is not None and cfg.faults.should_fail_task(cfg.pool_name, tid):
            if recorder:
                recorder.event("fault", name, ts=now(), task_id=tid, worker=cfg.wid)
            result_q.put(("error", tid, InjectedFault(f"task {name!r} failed by fault plan")))
            continue
        token = CancelToken(f"{cfg.pool_name}.{tid}")
        listener.register(tid, token)
        attachments = shm_plane.ShmAttachments()
        if recorder:
            recorder.event("task", name, phase="B", ts=now(), task_id=tid, worker=cfg.wid, pid=pid)
        try:
            try:
                args = shm_plane.decode_payload(enc_args, attachments)
                kwargs = shm_plane.decode_payload(enc_kwargs, attachments)
                with scoped_token(token):
                    value = fn(*args, **kwargs)
            finally:
                attachments.close()
            result_q.put(("done", tid, shm_plane.export_oneshot(value, cfg.shm_threshold)))
        except CancelledError as exc:
            if recorder:
                recorder.event("cancel", name, ts=now(), task_id=tid, worker=cfg.wid,
                               exception=type(exc).__name__)
            result_q.put(("cancelled", tid, str(exc) or "cancelled"))
        except BaseException as exc:
            result_q.put(("error", tid, _portable_exception(exc)))
        finally:
            listener.unregister(tid)
            if recorder:
                recorder.event("task", name, phase="E", ts=now(), task_id=tid, worker=cfg.wid)
    if recorder:
        recorder.close()


class ProcessPool(Executor):
    """Bounded pool of spawned worker processes behind the Executor API.

    .. note:: construct via ``repro.executor.create("processes", cores=N)``
       — the factory resolves traces, fault plans and worker counts
       uniformly (and honours ``backend_override``).

    Parameters
    ----------
    workers:
        Number of worker processes (the pool's ``cores``).
    name:
        Label used in trace events, metrics and fault-plan keys.
    prefetch:
        In-flight bound per worker: at most ``workers * prefetch`` tasks
        are shipped-but-incomplete at once.  Keeping it small preserves
        the cancellable parent-side window; raising it hides queue latency
        for swarms of tiny tasks.
    shm_threshold:
        Minimum ndarray payload (bytes) routed through shared memory
        instead of the pickle pipe.
    """

    def __init__(
        self,
        workers: int = 4,
        *,
        name: str = "procs",
        prefetch: int = 2,
        shm_threshold: int = shm_plane.DEFAULT_THRESHOLD,
        trace: TraceRecorder | None = None,
        faults: FaultPlan | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if prefetch < 1:
            raise ValueError(f"prefetch must be >= 1, got {prefetch}")
        self.cores = workers
        self.name = name
        self.prefetch = prefetch
        self.trace = resolve_recorder(trace)
        self.faults = resolve_faults(faults)
        self._arena = shm_plane.ShmArena(shm_threshold)

        self._mutex = threading.Lock()
        self._cond = threading.Condition(self._mutex)
        self._ready: deque[_Task] = deque()
        self._shipped: dict[int, _Task] = {}
        self._inflight = 0
        self._closing = False
        self._closed = False
        self._broken = False
        self._tid_counter = itertools.count(1)
        self._critical_locks: dict[str, threading.RLock] = {}

        # Deadline reaper (parent side: cancels still-pending futures).
        self._deadline_cond = threading.Condition()
        self._deadline_heap: list[tuple[float, int, Future]] = []
        self._deadline_seq = itertools.count()
        self._reaper: threading.Thread | None = None
        self._reaper_stop = False

        ctx = mp.get_context("spawn")
        self._task_q = ctx.SimpleQueue()
        self._result_q = ctx.SimpleQueue()

        self._shard_dir = tempfile.mkdtemp(prefix="repro-shards-") if self.trace.enabled else None
        # Workers stamp wall-clock time relative to this epoch so their
        # events land directly on the parent recorder's timeline.
        wall_epoch = time.time() - self.trace.now()

        send_conns = []
        self._processes = []
        for wid in range(workers):
            recv_conn, send_conn = ctx.Pipe(duplex=False)
            send_conns.append(send_conn)
            cfg = _WorkerConfig(
                pool_name=name,
                wid=wid,
                faults=self.faults if (self.faults is not None and self.faults.active) else None,
                shard_file=shard_path(self._shard_dir, wid) if self._shard_dir else None,
                wall_epoch=wall_epoch,
                shm_threshold=shm_threshold,
            )
            proc = ctx.Process(
                target=_worker_main,
                args=(cfg, self._task_q, self._result_q, recv_conn),
                name=f"{name}-w{wid}",
                daemon=True,
            )
            proc.start()
            recv_conn.close()  # the child holds its own copy now
            self._processes.append(proc)
        self._channel = RemoteCancelChannel(send_conns)

        self._feeder = threading.Thread(target=self._feed, name=f"{name}-feeder", daemon=True)
        self._feeder.start()
        self._collector = threading.Thread(target=self._collect, name=f"{name}-collector", daemon=True)
        self._collector.start()
        self._watchdog = threading.Thread(target=self._watch, name=f"{name}-watchdog", daemon=True)
        self._watchdog.start()

    def signal(self, name: str, value: Any = True) -> None:
        """Broadcast an out-of-band named flag to every worker.

        Rides the cancel pipes; workers record it via
        :func:`repro.obs.rtrace.set_worker_signal` before their next
        ``recv`` completes.  Sent once per call, best-effort.
        """
        self._channel.broadcast_signal(name, value)

    def _watch(self) -> None:
        """Fail fast when a worker dies instead of hanging its waiters.

        A worker that exits without being asked (spawn import error,
        ``os._exit``, OOM kill) can never complete the tasks it holds;
        without this thread the parent would block forever on their
        futures.  Any unexpected death marks the pool broken: in-flight
        and queued futures fail with :class:`ExecutorShutdown` (the
        BrokenProcessPool discipline).
        """
        while True:
            with self._cond:
                if self._closing:
                    return
            dead = [p for p in self._processes if not p.is_alive()]
            if dead:
                with self._cond:
                    if self._closing:
                        return
                    broken = list(self._ready)
                    self._ready.clear()
                    self._cond.notify_all()
                codes = sorted({p.exitcode for p in dead})
                why = ExecutorShutdown(
                    f"pool {self.name!r} is broken: {len(dead)} worker(s) died (exitcodes {codes})"
                )
                self._broken = True
                for task in broken:
                    task.future.fail_if_pending(why)
                reclaimed = 0
                for tid in list(self._shipped):
                    task = self._shipped.pop(tid, None)
                    if task is None:
                        continue
                    reclaimed += 1
                    if not task.future.done():
                        try:
                            task.future.set_exception(why)
                        except Exception:
                            pass  # lost the race to a late completion
                with self._cond:
                    # The collector skips tids we reclaimed, so account
                    # for them here or shutdown's drain wait never ends.
                    self._inflight -= reclaimed
                    self._cond.notify_all()
                return
            time.sleep(0.2)

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        fn: Callable[..., Any],
        *args: Any,
        cost: float | None = None,
        name: str = "",
        after: Sequence[Future] = (),
        cancel: CancelToken | None = None,
        deadline: float | None = None,
        **kwargs: Any,
    ) -> Future:
        """Queue ``fn(*args, **kwargs)`` for a worker process.

        ``fn`` and its arguments must be picklable by the spawn start
        method (module-level callables; no lambdas or closures).  Large
        NumPy arrays travel through the shared-memory plane instead of
        the pickle stream.  ``cost`` is accepted for interface parity
        with the virtual-time backends and ignored; ``after`` only
        records dependency edges in the trace — it does not delay
        dispatch, because cross-process ordering is the queue's.
        ``cancel`` and ``deadline`` follow the Future claim protocol:
        both can only win while the task is still queued.
        """
        if deadline is not None and deadline < 0:
            raise ValueError(f"deadline must be >= 0, got {deadline}")
        with self._mutex:
            if self._closing:
                raise ExecutorShutdown(f"pool {self.name!r} is shut down")
            if self._broken:
                raise ExecutorShutdown(f"pool {self.name!r} is broken (a worker died)")
        future = Future(name=name or getattr(fn, "__name__", "task"))
        tid = next(self._tid_counter)
        future.meta["tid"] = tid
        task = _Task(tid=tid, future=future, fn=fn, args=args, kwargs=kwargs, token=cancel)
        if deadline is not None:
            task.deadline_wall = time.time() + deadline

        if self.trace.enabled:
            dep_tasks = [d.meta["tid"] for d in after if "tid" in d.meta]
            self.trace.event(
                "submit", future.name, task_id=tid,
                parent=self.task_id(), deps=len(after), dep_tasks=dep_tasks,
            )
            self.trace.count(f"{self.name}.submitted")

        if cancel is not None:
            def on_token_cancel() -> None:
                reason = f"token {cancel.name!r} cancelled"
                if future.cancel(reason):
                    self._emit_cancel(future)
                    self._notify()
                else:
                    # Already claimed: the cancel must chase the task
                    # across the process boundary.
                    self._channel.broadcast_cancel(tid, reason)

            cancel.on_cancel(on_token_cancel)
            if future.done():  # token was already cancelled at submit
                return future

        pending = [dep for dep in after if not dep.done()]
        if not pending:
            if self._resolve_deps_now(task, after):
                self._schedule(task)
            return future

        remaining = len(pending)
        count_lock = threading.Lock()

        def on_dep_done(dep: Future) -> None:
            nonlocal remaining
            if future.done():
                return
            if dep.cancelled():
                if future.cancel(f"dependency {dep.name!r} was cancelled"):
                    self._emit_cancel(future)
                return
            exc = dep.exception()
            if exc is not None:
                future.fail_if_pending(exc)
                return
            with count_lock:
                remaining -= 1
                ready = remaining == 0
            if ready and self._resolve_deps_now(task, after):
                self._schedule(task)

        for dep in pending:
            dep.add_done_callback(on_dep_done)
        return future

    def _resolve_deps_now(self, task: _Task, after: Sequence[Future]) -> bool:
        """Apply completed-dependency outcomes; True if the task may run."""
        for dep in after:
            if dep.cancelled():
                if task.future.cancel(f"dependency {dep.name!r} was cancelled"):
                    self._emit_cancel(task.future)
                return False
            exc = dep.exception() if dep.done() else None
            if exc is not None:
                task.future.fail_if_pending(exc)
                return False
        return True

    def _schedule(self, task: _Task) -> None:
        with self._cond:
            if self._closing:
                closing = True
            else:
                closing = False
                self._ready.append(task)
                if self.trace.enabled:
                    self.trace.set_gauge(f"{self.name}.ready", float(len(self._ready)))
                self._cond.notify_all()
        if closing:
            # A dependency completed after shutdown began: strand rather
            # than leave the waiter hanging on a queue nobody feeds.
            task.future.fail_if_pending(
                ExecutorShutdown(f"pool {self.name!r} shut down before task {task.future.name!r} ran")
            )
            return
        if task.deadline_wall is not None:
            self._watch_deadline(task.future, task.deadline_wall - time.time())

    def _emit_cancel(self, future: Future) -> None:
        if self.trace.enabled:
            self.trace.event(
                "cancel", future.name, task_id=future.meta.get("tid", 0),
                exception=type(future.exception()).__name__,
            )
            self.trace.count(f"{self.name}.cancelled")

    def _notify(self) -> None:
        with self._cond:
            self._cond.notify_all()

    # -- feeder / collector threads ------------------------------------------

    def _feed(self) -> None:
        """Claim ready tasks and ship them to the worker queue, bounded."""
        limit = self.cores * self.prefetch
        while True:
            with self._cond:
                while not (self._ready and self._inflight < limit):
                    if self._closing and not self._ready:
                        return  # shutdown: nothing left to ship
                    self._cond.wait()
                task = self._ready.popleft()
                self._inflight += 1
            if not task.future.try_start():
                # Cancelled (or deadline-reaped) while queued: drop it.
                with self._cond:
                    self._inflight -= 1
                    self._cond.notify_all()
                continue
            self._shipped[task.tid] = task
            try:
                enc_args = shm_plane.encode_payload(task.args, self._arena)
                enc_kwargs = shm_plane.encode_payload(task.kwargs, self._arena)
                self._task_q.put(
                    (task.tid, task.future.name, task.fn, enc_args, enc_kwargs, task.deadline_wall)
                )
            except Exception as exc:  # unpicklable fn/args: fail, don't hang
                self._shipped.pop(task.tid, None)
                task.future.set_exception(
                    RuntimeError(f"task {task.future.name!r} could not be shipped to a worker: {exc}")
                )
                with self._cond:
                    self._inflight -= 1
                    self._cond.notify_all()

    def _collect(self) -> None:
        """Complete futures from worker result messages."""
        while True:
            message = self._result_q.get()
            if message is None:
                return
            kind, tid, payload = message
            task = self._shipped.pop(tid, None)
            if task is None:
                continue  # completed via another path (shutdown strand)
            future = task.future
            try:
                if kind == "done":
                    try:
                        future.set_result(shm_plane.consume_oneshot(payload))
                    except Exception as exc:
                        future.set_exception(RuntimeError(f"result transport failed: {exc}"))
                    if self.trace.enabled:
                        self.trace.count(f"{self.name}.tasks_executed")
                elif kind == "error":
                    future.set_exception(payload)
                    if self.trace.enabled and isinstance(payload, InjectedFault):
                        self.trace.count(f"{self.name}.faults_injected")
                elif kind == "cancelled":
                    future.set_exception(
                        CancelledError(f"task {future.name!r} was cancelled: {payload}")
                    )
                    if self.trace.enabled:
                        self.trace.count(f"{self.name}.cancelled")
                elif kind == "deadline":
                    future.set_exception(
                        DeadlineExceeded(f"task {future.name!r} missed its deadline")
                    )
                    if self.trace.enabled:
                        self.trace.count(f"{self.name}.cancelled")
            finally:
                with self._cond:
                    self._inflight -= 1
                    self._cond.notify_all()

    # -- deadline reaper (parent side, pending futures only) -----------------

    def _watch_deadline(self, future: Future, remaining: float) -> None:
        expires = time.monotonic() + max(0.0, remaining)
        with self._deadline_cond:
            heapq.heappush(self._deadline_heap, (expires, next(self._deadline_seq), future))
            if self._reaper is None:
                self._reaper = threading.Thread(
                    target=self._reaper_loop, name=f"{self.name}-reaper", daemon=True
                )
                self._reaper.start()
            self._deadline_cond.notify()

    def _reaper_loop(self) -> None:
        while True:
            with self._deadline_cond:
                while not self._deadline_heap and not self._reaper_stop:
                    self._deadline_cond.wait()
                if self._reaper_stop:
                    return
                expires, _, future = self._deadline_heap[0]
                delay = expires - time.monotonic()
                if delay > 0:
                    self._deadline_cond.wait(timeout=delay)
                    continue
                heapq.heappop(self._deadline_heap)
            if future.done():
                continue
            if future.cancel(DeadlineExceeded(f"task {future.name!r} missed its deadline")):
                self._emit_cancel(future)
                self._notify()  # wake the feeder so the dead task is dropped

    # -- executor interface --------------------------------------------------

    def compute(self, cost: float) -> None:
        if cost < 0:
            raise ValueError(f"cost must be >= 0, got {cost}")
        # Out-of-process tasks do real work; cost declarations need no
        # realisation (and this parent-side object never runs task bodies).

    @contextmanager
    def critical(self, name: str = "default") -> Iterator[None]:
        """Parent-side named critical section.

        Task bodies run in workers and cannot reach this object (it is
        not picklable), so this serialises *parent* threads only — e.g.
        done-callbacks racing the submitting thread.
        """
        with self._mutex:
            lock = self._critical_locks.setdefault(name, threading.RLock())
        with lock:
            yield

    def barrier(self, key: str, parties: int) -> None:
        raise RuntimeError(
            "the processes backend has no cross-process barriers: task bodies "
            "cannot rendezvous across workers — decompose the workload into "
            "flat tasks (see matmul_tasks / quicksort_chunks) or use the "
            "threads/sim backends for barrier demos"
        )

    def task_id(self) -> int:
        return 0  # task bodies run out of process; the parent is task 0

    # -- shutdown ------------------------------------------------------------

    def shutdown(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop workers; ``drain=True`` finishes queued work first.

        ``drain=False`` strands parent-side queued tasks with
        :class:`ExecutorShutdown` (tasks already shipped to workers still
        finish — the in-flight bound keeps that set small).
        """
        with self._cond:
            if self._closed:
                return
            already_closing = self._closing
            self._closing = True
            self._cond.notify_all()
            if already_closing:
                return
            if drain:
                self._cond.wait_for(
                    lambda: not self._ready and self._inflight == 0, timeout=timeout
                )
                stranded = list(self._ready)  # non-empty only on timeout
                self._ready.clear()
            else:
                stranded = list(self._ready)
                self._ready.clear()
        for task in stranded:
            if task.future.fail_if_pending(
                ExecutorShutdown(
                    f"pool {self.name!r} shut down before task {task.future.name!r} ran"
                )
            ) and self.trace.enabled:
                self.trace.event("drain", task.future.name, task_id=task.tid)
                self.trace.count(f"{self.name}.drained")
        self._feeder.join(timeout=timeout)

        for _ in self._processes:
            self._task_q.put(None)
        for proc in self._processes:
            proc.join(timeout=timeout)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        # Anything still incomplete after the workers are gone (a crashed
        # worker's task) must not leave waiters hanging.
        for tid, task in list(self._shipped.items()):
            self._shipped.pop(tid, None)
            if not task.future.done():
                try:
                    task.future.set_exception(
                        ExecutorShutdown(f"worker exited before task {task.future.name!r} completed")
                    )
                except Exception:
                    pass  # lost the race to a late completion: fine

        self._result_q.put(None)
        self._collector.join(timeout=timeout)
        with self._deadline_cond:
            self._reaper_stop = True
            self._deadline_cond.notify_all()
        if self._reaper is not None:
            self._reaper.join(timeout=timeout)
        self._channel.close()

        if self._shard_dir is not None:
            events, malformed = merge_shards(
                shard_path(self._shard_dir, wid) for wid in range(self.cores)
            )
            replay_into(self.trace, events)
            if malformed:
                self.trace.count(f"{self.name}.shard_lines_dropped", malformed)
            shutil.rmtree(self._shard_dir, ignore_errors=True)
            self._shard_dir = None
        self._arena.close()
        self._closed = True

    def __repr__(self) -> str:
        return (
            f"ProcessPool({self.name!r}, workers={self.cores}, "
            f"inflight={self._inflight}, shm={self._arena!r})"
        )
