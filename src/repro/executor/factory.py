"""One front door for constructing any executor backend.

:func:`create` is the canonical way to build an executor::

    from repro.executor import create

    ex = create("inline")                      # sequential reference
    ex = create("threads", cores=4)            # real work-stealing pool
    ex = create("sim", cores=16)               # virtual time on PARC64@16c
    ex = create("sim", machine=ANDROID_PHONE)  # virtual time, given machine
    ex = create("threads", cores=2, compute_mode="sleep", trace=recorder)

Every backend accepts the same cross-cutting arguments (``cores``,
``machine``, ``trace``, ``faults``) plus backend-specific options passed through
``**opts`` (``compute_mode``/``time_scale``/``steal_seed``/``name``/
``scheduling`` for threads, ``policy`` for sim).  The
:class:`ExecutorConfig` dataclass is the declarative twin: it validates
eagerly, can be stored/compared, and :meth:`ExecutorConfig.build` makes
the executor.

Direct constructors (:class:`~repro.executor.inline.InlineExecutor`,
:class:`~repro.executor.threads.WorkStealingPool`,
:class:`~repro.executor.simulated.SimExecutor`) remain supported for
backward compatibility, but new code should prefer this factory — it is
the one place where defaults, machine resolution and trace injection are
decided.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.executor.base import Executor
from repro.executor.inline import InlineExecutor
from repro.executor.simulated import SimExecutor
from repro.executor.threads import WorkStealingPool
from repro.machine.spec import PARC64, MachineSpec
from repro.obs.trace import TraceRecorder
from repro.resilience.faults import FaultPlan

__all__ = ["create", "ExecutorConfig", "KINDS"]

#: canonical backend kinds (aliases: "pool" -> "threads", "simulated" -> "sim")
KINDS = ("inline", "threads", "sim")

_ALIASES = {"pool": "threads", "thread": "threads", "simulated": "sim", "virtual": "sim"}

_THREAD_OPTS = {"compute_mode", "time_scale", "steal_seed", "name", "scheduling"}
_SIM_OPTS = {"policy"}


@dataclass(frozen=True)
class ExecutorConfig:
    """A validated, storable description of an executor to build.

    Parameters
    ----------
    kind:
        ``"inline"``, ``"threads"`` or ``"sim"`` (aliases ``"pool"``,
        ``"simulated"`` accepted and normalised).
    cores:
        Worker count (threads) or simulated core count (sim).  Defaults:
        threads 4; sim takes the machine's core count.  ``inline`` is
        definitionally single-core and rejects any other value.
    machine:
        A :class:`~repro.machine.spec.MachineSpec` for the sim backend
        (default PARC64, rescaled to ``cores`` when both are given).
        For ``threads`` it only supplies a default worker count.
    trace:
        Observability recorder handed to the backend; ``None`` defers to
        the ambient recorder (see :mod:`repro.obs`).
    faults:
        Optional :class:`~repro.resilience.FaultPlan` handed to the
        backend; ``None`` defers to the ambient plan (see
        :func:`repro.resilience.use_faults`) — normally no faults.
    options:
        Backend-specific keyword options, validated per kind.
    """

    kind: str
    cores: int | None = None
    machine: MachineSpec | None = None
    trace: TraceRecorder | None = None
    faults: FaultPlan | None = None
    options: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        kind = _ALIASES.get(self.kind, self.kind)
        object.__setattr__(self, "kind", kind)
        if kind not in KINDS:
            raise ValueError(f"unknown executor kind {self.kind!r}; expected one of {KINDS}")
        if self.cores is not None and self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores}")
        allowed = {"inline": set(), "threads": _THREAD_OPTS, "sim": _SIM_OPTS}[kind]
        unknown = set(self.options) - allowed
        if unknown:
            raise ValueError(
                f"options {sorted(unknown)} not understood by the {kind!r} backend; "
                f"it accepts {sorted(allowed) or 'no options'}"
            )
        if kind == "inline":
            if self.cores not in (None, 1):
                raise ValueError(f"inline execution is single-core; got cores={self.cores}")
            if self.machine is not None:
                raise ValueError("inline execution takes no machine model")

    def resolved_machine(self) -> MachineSpec:
        """The machine the sim backend will run on (PARC64-derived default)."""
        machine = self.machine if self.machine is not None else PARC64
        if self.cores is not None and machine.cores != self.cores:
            machine = machine.with_cores(self.cores)
        return machine

    def build(self) -> Executor:
        """Construct the configured executor."""
        if self.kind == "inline":
            return InlineExecutor(trace=self.trace, faults=self.faults)
        if self.kind == "threads":
            if self.cores is not None:
                workers = self.cores
            elif self.machine is not None:
                workers = self.machine.cores
            else:
                workers = 4
            return WorkStealingPool(
                workers=workers, trace=self.trace, faults=self.faults, **self.options
            )
        return SimExecutor(
            self.resolved_machine(), trace=self.trace, faults=self.faults, **self.options
        )


def create(
    kind: str,
    *,
    cores: int | None = None,
    machine: MachineSpec | None = None,
    trace: TraceRecorder | None = None,
    faults: FaultPlan | None = None,
    **opts: Any,
) -> Executor:
    """Build an executor backend; the canonical construction path.

    See :class:`ExecutorConfig` for parameter semantics.  Unknown kinds
    and options raise ``ValueError`` eagerly, naming what is accepted.
    """
    return ExecutorConfig(
        kind=kind, cores=cores, machine=machine, trace=trace, faults=faults, options=dict(opts)
    ).build()
