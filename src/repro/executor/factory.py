"""One front door for constructing any executor backend.

:func:`create` is the canonical way to build an executor::

    from repro.executor import create

    ex = create("inline")                      # sequential reference
    ex = create("threads", cores=4)            # real work-stealing pool
    ex = create("processes", cores=4)          # real multi-core worker processes
    ex = create("sim", cores=16)               # virtual time on PARC64@16c
    ex = create("sim", machine=ANDROID_PHONE)  # virtual time, given machine
    ex = create("threads", cores=2, compute_mode="sleep", trace=recorder)

Every backend accepts the same cross-cutting arguments (``cores``,
``machine``, ``trace``, ``faults``) plus backend-specific options passed
through ``**opts``.  Which kinds exist is no longer fixed here: backends
live in the open registry (:mod:`repro.executor.registry`), this module
merely registers the built-ins and validates configs against whatever is
registered.  ``KINDS`` is a live view of the registry, so external
registrations show up in it immediately.

The :class:`ExecutorConfig` dataclass is the declarative twin: it
validates eagerly, can be stored/compared, round-trips to plain dicts
(:meth:`ExecutorConfig.to_dict` / :meth:`ExecutorConfig.from_dict`) so
orchestration layers can persist and replay configurations, and
:meth:`ExecutorConfig.build` makes the executor.

Direct constructors (:class:`~repro.executor.inline.InlineExecutor`,
:class:`~repro.executor.threads.WorkStealingPool`,
:class:`~repro.executor.simulated.SimExecutor`) remain importable for
backward compatibility, but they are a deprecated construction path —
``create()``/``ExecutorConfig`` is the one place where defaults, machine
resolution, trace injection and backend redirection are decided.
"""

from __future__ import annotations

import dataclasses
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.executor.base import Executor
from repro.executor.inline import InlineExecutor
from repro.executor.registry import (
    BackendCapabilities,
    KindsView,
    get_backend,
    register_backend,
    resolve_kind,
)
from repro.executor.simulated import SimExecutor
from repro.executor.threads import WorkStealingPool
from repro.machine.spec import PARC64, MachineSpec
from repro.obs.trace import TraceRecorder
from repro.resilience.faults import FaultPlan

__all__ = ["create", "ExecutorConfig", "KINDS", "backend_override"]

#: Live, read-only sequence of registered backend kinds (aliases resolve
#: via ``create()``; see :func:`repro.executor.registry.backend_aliases`).
KINDS = KindsView()


@dataclass(frozen=True)
class ExecutorConfig:
    """A validated, storable description of an executor to build.

    Parameters
    ----------
    kind:
        Any registered backend name or alias (``"inline"``, ``"threads"``
        / ``"pool"``, ``"sim"`` / ``"simulated"`` / ``"virtual"``,
        ``"processes"`` / ``"mp"`` out of the box); normalised to the
        canonical name.
    cores:
        Worker count (threads/processes) or simulated core count (sim).
        Defaults: threads and processes 4; sim takes the machine's core
        count.  Single-core backends (``inline``) reject any other value.
    machine:
        A :class:`~repro.machine.spec.MachineSpec` for the sim backend
        (default PARC64, rescaled to ``cores`` when both are given).
        For threads/processes it only supplies a default worker count.
    trace:
        Observability recorder handed to the backend; ``None`` defers to
        the ambient recorder (see :mod:`repro.obs`).
    faults:
        Optional :class:`~repro.resilience.FaultPlan` handed to the
        backend; ``None`` defers to the ambient plan (see
        :func:`repro.resilience.use_faults`) — normally no faults.
    options:
        Backend-specific keyword options, validated eagerly against the
        registered backend's declared option set.
    """

    kind: str
    cores: int | None = None
    machine: MachineSpec | None = None
    trace: TraceRecorder | None = None
    faults: FaultPlan | None = None
    options: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        kind = resolve_kind(self.kind)  # raises "unknown executor kind ..." with the full listing
        object.__setattr__(self, "kind", kind)
        backend = get_backend(kind)
        if self.cores is not None and self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores}")
        unknown = set(self.options) - set(backend.options)
        if unknown:
            raise ValueError(
                f"options {sorted(unknown)} not understood by the {kind!r} backend; "
                f"it accepts {sorted(backend.options) or 'no options'}"
            )
        if backend.single_core and self.cores not in (None, 1):
            raise ValueError(f"{kind} execution is single-core; got cores={self.cores}")
        if not backend.accepts_machine and self.machine is not None:
            raise ValueError(f"{kind} execution takes no machine model")

    @property
    def capabilities(self) -> BackendCapabilities:
        """The registered capability declaration for this config's backend."""
        return get_backend(self.kind).capabilities

    def resolved_machine(self) -> MachineSpec:
        """The machine the sim backend will run on (PARC64-derived default)."""
        machine = self.machine if self.machine is not None else PARC64
        if self.cores is not None and machine.cores != self.cores:
            machine = machine.with_cores(self.cores)
        return machine

    def resolved_workers(self, default: int = 4) -> int:
        """Worker count for pool-style backends: cores, else the machine's, else ``default``."""
        if self.cores is not None:
            return self.cores
        if self.machine is not None:
            return self.machine.cores
        return default

    def build(self) -> Executor:
        """Construct the configured executor via its registered builder."""
        return get_backend(self.kind).builder(self)

    def to_dict(self) -> dict[str, Any]:
        """A plain-dict snapshot that :meth:`from_dict` reconstructs exactly.

        Only declarative fields serialise; a live ``trace`` recorder is a
        runtime object and raises ``ValueError`` (inject it at build time
        instead, or rely on the ambient recorder).
        """
        if self.trace is not None:
            raise ValueError(
                "ExecutorConfig with a live trace recorder cannot be serialised; "
                "attach the recorder at build time or use the ambient one"
            )
        return {
            "kind": self.kind,
            "cores": self.cores,
            "machine": None if self.machine is None else dataclasses.asdict(self.machine),
            "faults": None if self.faults is None else dataclasses.asdict(self.faults),
            "options": dict(self.options),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ExecutorConfig":
        """Rebuild a config from :meth:`to_dict` output, rejecting unknown keys eagerly."""
        if not isinstance(data, dict):
            raise ValueError(f"ExecutorConfig.from_dict expects a dict, got {type(data).__name__}")
        allowed = {"kind", "cores", "machine", "faults", "options"}
        unknown = set(data) - allowed
        if unknown:
            raise ValueError(
                f"unknown ExecutorConfig keys {sorted(unknown)}; expected a subset of {sorted(allowed)}"
            )
        if "kind" not in data:
            raise ValueError("ExecutorConfig dict is missing the required 'kind' key")
        machine = data.get("machine")
        if machine is not None:
            try:
                machine = MachineSpec(**machine)
            except TypeError as exc:
                raise ValueError(f"bad machine spec in ExecutorConfig dict: {exc}") from exc
        faults = data.get("faults")
        if faults is not None:
            try:
                faults = FaultPlan(**faults)
            except TypeError as exc:
                raise ValueError(f"bad fault plan in ExecutorConfig dict: {exc}") from exc
        options = data.get("options") or {}
        if not isinstance(options, dict):
            raise ValueError(f"ExecutorConfig options must be a dict, got {type(options).__name__}")
        return cls(
            kind=data["kind"],
            cores=data.get("cores"),
            machine=machine,
            faults=faults,
            options=dict(options),
        )


# ---------------------------------------------------------------------------
# Built-in backend registrations.


def _build_inline(cfg: ExecutorConfig) -> Executor:
    return InlineExecutor(trace=cfg.trace, faults=cfg.faults)


def _build_threads(cfg: ExecutorConfig) -> Executor:
    return WorkStealingPool(
        workers=cfg.resolved_workers(), trace=cfg.trace, faults=cfg.faults, **cfg.options
    )


def _build_sim(cfg: ExecutorConfig) -> Executor:
    return SimExecutor(cfg.resolved_machine(), trace=cfg.trace, faults=cfg.faults, **cfg.options)


def _build_processes(cfg: ExecutorConfig) -> Executor:
    from repro.executor.processes import ProcessPool  # heavy import deferred to first use

    return ProcessPool(
        workers=cfg.resolved_workers(), trace=cfg.trace, faults=cfg.faults, **cfg.options
    )


register_backend(
    "inline",
    _build_inline,
    capabilities=BackendCapabilities(),
    single_core=True,
    accepts_machine=False,
    summary="sequential reference semantics; tasks run at submit time on the caller",
)
register_backend(
    "threads",
    _build_threads,
    capabilities=BackendCapabilities(),
    options=("compute_mode", "time_scale", "steal_seed", "name", "scheduling"),
    aliases=("pool", "thread"),
    summary="real OS threads with work-stealing deques and blocked-join helping (GIL-bound)",
)
register_backend(
    "sim",
    _build_sim,
    capabilities=BackendCapabilities(virtual_time=True),
    options=("policy",),
    aliases=("simulated", "virtual"),
    summary="eager values plus virtual-time scheduling on a MachineSpec",
)
register_backend(
    "processes",
    _build_processes,
    capabilities=BackendCapabilities(real_parallel=True, out_of_process=True, barriers=False),
    options=("name", "prefetch", "shm_threshold"),
    aliases=("mp", "process"),
    summary="spawned worker processes with a shared-memory NumPy data plane (no GIL)",
)


# ---------------------------------------------------------------------------
# Ambient backend redirection (the CLI's --backend/--cores option group).

_REDIRECTABLE = frozenset({"inline", "threads", "processes"})

_override_local = threading.local()


@contextmanager
def backend_override(kind: str | None = None, cores: int | None = None) -> Iterator[None]:
    """Redirect ``create()`` calls for *real* backends inside the block.

    While active, any ``create()`` of a redirectable kind (``inline``,
    ``threads``, ``processes``) builds ``kind`` instead (with ``cores``
    workers when given); options the target backend does not accept are
    dropped rather than raising, so existing call sites keep working.
    Virtual-time (``sim``) call sites are deliberately left alone —
    experiments interrogate sim-specific APIs (``elapsed()``,
    ``schedule()``) that no real backend provides.

    This is how ``python -m repro <cmd> --backend processes --cores 4``
    retargets every real executor an experiment builds without each
    experiment growing backend plumbing.
    """
    if kind is not None:
        kind = resolve_kind(kind)
        if get_backend(kind).capabilities.virtual_time:
            raise ValueError(
                f"backend override cannot target the virtual-time backend {kind!r}; "
                f"it redirects real execution (e.g. {sorted(_REDIRECTABLE)})"
            )
    prev = getattr(_override_local, "value", None)
    _override_local.value = (kind, cores)
    try:
        yield
    finally:
        _override_local.value = prev


def _apply_override(cfg: ExecutorConfig) -> ExecutorConfig:
    override = getattr(_override_local, "value", None)
    if override is None or cfg.kind not in _REDIRECTABLE:
        return cfg
    kind, cores = override
    new_kind = kind if kind is not None else cfg.kind
    new_cores = cores if cores is not None else cfg.cores
    backend = get_backend(new_kind)
    if backend.single_core:
        new_cores = None
    machine = cfg.machine if backend.accepts_machine else None
    options = {k: v for k, v in cfg.options.items() if k in backend.options}
    if (new_kind, new_cores, machine, options) == (cfg.kind, cfg.cores, cfg.machine, cfg.options):
        return cfg
    return ExecutorConfig(
        kind=new_kind,
        cores=new_cores,
        machine=machine,
        trace=cfg.trace,
        faults=cfg.faults,
        options=options,
    )


def create(
    kind: str,
    *,
    cores: int | None = None,
    machine: MachineSpec | None = None,
    trace: TraceRecorder | None = None,
    faults: FaultPlan | None = None,
    **opts: Any,
) -> Executor:
    """Build an executor backend; the canonical construction path.

    See :class:`ExecutorConfig` for parameter semantics.  Unknown kinds
    and options raise ``ValueError`` eagerly, naming what is accepted
    (including every registered backend and its aliases).
    """
    cfg = ExecutorConfig(
        kind=kind, cores=cores, machine=machine, trace=trace, faults=faults, options=dict(opts)
    )
    return _apply_override(cfg).build()
