"""Virtual-time executor: eager values, simulated schedule.

How it works
------------
Task *values* are computed eagerly: ``submit`` runs the function right
away on the calling thread, so results, nesting and exceptions behave
exactly like the inline executor.  Task *timing* is recorded instead of
performed: every task becomes one or more cost-annotated segments in a
:class:`~repro.machine.graph.SegmentGraph`, with edges for spawns, joins
(``future.result()``), critical sections and barriers.  Calling
:meth:`SimExecutor.schedule` list-schedules the recorded graph on a
:class:`~repro.machine.spec.MachineSpec`, yielding the makespan the same
program would have on that machine.

Restrictions (documented, checked where cheap): programs must be
*deterministic task-parallel* — results must not depend on cross-task
timing, because eager evaluation fixes one particular order.  All the
workloads in :mod:`repro.apps` satisfy this.

The big win: a graph recorded **once** can be re-scheduled on every
machine of a core sweep (1..64 cores) in milliseconds, which is what the
project benchmarks do.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

from repro.executor.base import Executor
from repro.executor.future import Future
from repro.machine.graph import SegmentGraph
from repro.machine.listsched import ScheduleResult, simulate_schedule
from repro.machine.spec import MachineSpec
from repro.obs import rtrace as _rtrace
from repro.obs.trace import TraceRecorder, resolve_recorder
from repro.resilience.cancel import CancelToken, DeadlineExceeded, scoped_token
from repro.resilience.faults import FaultPlan, InjectedFault, resolve_faults

__all__ = ["SimExecutor", "SimFuture"]


class SimFuture(Future):
    """Future that records a join edge when its result is consumed."""

    __slots__ = ("_sim",)

    def __init__(self, sim: "SimExecutor", name: str = "") -> None:
        super().__init__(name=name)
        self._sim = sim

    def result(self, timeout: float | None = None) -> Any:
        self._sim._record_join(self)
        return super().result(timeout=0)

    def exception(self, timeout: float | None = None) -> BaseException | None:
        self._sim._record_join(self)
        return super().exception(timeout=0)


@dataclass
class _TaskCtx:
    task_id: int
    current_sid: int


class SimExecutor(Executor):
    """Records a task program and schedules it in virtual time.

    .. note:: prefer ``repro.executor.create("sim", cores=..., machine=...)``
       over this constructor; the direct form stays supported for
       backward compatibility.
    """

    def __init__(
        self,
        machine: MachineSpec,
        policy: str = "earliest",
        trace: TraceRecorder | None = None,
        faults: FaultPlan | None = None,
    ) -> None:
        self.machine = machine
        self.cores = machine.cores
        self.policy = policy
        self.faults = resolve_faults(faults)
        # Virtual timestamps only exist once a schedule is computed, so
        # the sim backend traces *post hoc*: each ``schedule()`` call
        # emits its placements as one trace group (see
        # :meth:`_emit_schedule_trace`).
        self.trace = resolve_recorder(trace)
        self._schedule_count = 0
        self.graph = SegmentGraph()
        root = self.graph.add(task_id=0, name="main", cost=0.0)
        self._stack: list[_TaskCtx] = [_TaskCtx(task_id=0, current_sid=root.sid)]
        self._task_counter = 0
        # Lock acquisitions are recorded, not chained eagerly: eager
        # program order would chain ALL of task 0's sections before task
        # 1's first, falsely serialising whole tasks even under striping.
        # At schedule time each lock's chain is wired in DAG-depth order
        # (fair interleaving across tasks); see :meth:`schedule`.
        self._lock_acquisitions: dict[str, list[int]] = {}
        # Barrier bookkeeping.  Eager evaluation runs one team member to
        # completion before the next starts, so a member's k-th arrival at a
        # cyclic barrier belongs to rendezvous *generation* k — arrivals must
        # be grouped by generation, not just by key.
        self._barrier_arrivals: dict[str, dict[int, list[tuple[int, int]]]] = {}
        self._barrier_generation: dict[tuple[str, int], int] = {}
        self._joined_sids: set[tuple[int, int]] = set()

    # -- recording hooks -----------------------------------------------------

    def _top(self) -> _TaskCtx:
        return self._stack[-1]

    def _split(self, ctx: _TaskCtx, name: str, extra_deps: Sequence[int] = ()) -> int:
        """End the task's current segment, start a new one depending on it."""
        seg = self.graph.add(
            task_id=ctx.task_id, name=name, cost=0.0, deps=[ctx.current_sid, *extra_deps]
        )
        ctx.current_sid = seg.sid
        return seg.sid

    def _record_join(self, fut: SimFuture) -> None:
        last_sid = fut.meta.get("last_sid")
        if last_sid is None:
            raise RuntimeError(f"future {fut.name!r} was not produced by this SimExecutor")
        ctx = self._top()
        key = (ctx.current_sid, last_sid)
        if key in self._joined_sids:  # joining the same future twice is a no-op
            return
        self._split(ctx, f"join:{fut.name}", extra_deps=[last_sid])
        self._joined_sids.add((ctx.current_sid, last_sid))

    # -- Executor interface ----------------------------------------------------

    def submit(
        self,
        fn: Callable[..., Any],
        *args: Any,
        cost: float | None = None,
        name: str = "",
        after: Sequence[Future] = (),
        cancel: CancelToken | None = None,
        deadline: float | None = None,
        **kwargs: Any,
    ) -> Future:
        """Record the spawn, evaluate ``fn`` eagerly, return a done future.

        Eager evaluation means only a token cancelled *before* submit (or
        a non-positive ``deadline``) can stop the task; either way a
        zero-cost segment is still recorded so the graph stays
        consistent for dependants and joins.
        """
        if deadline is not None and deadline < 0:
            raise ValueError(f"deadline must be >= 0, got {deadline}")
        parent = self._top()
        self._task_counter += 1
        tid = self._task_counter
        name = name or getattr(fn, "__name__", f"task{tid}")

        dep_sids = [parent.current_sid]
        cancelled_dep: Future | None = None
        failed_dep: BaseException | None = None
        for dep in after:
            last = dep.meta.get("last_sid")
            if last is None:
                raise RuntimeError(
                    f"task {name!r}: 'after' future {dep.name!r} was not produced by this SimExecutor"
                )
            dep_sids.append(last)
            if cancelled_dep is None and dep.cancelled():
                cancelled_dep = dep
            elif failed_dep is None:
                exc = Future.exception(dep)  # plain read, no join recording
                if exc is not None:
                    failed_dep = exc

        def skipped(suffix: str) -> SimFuture:
            # Record a zero-cost segment so the graph stays consistent.
            seg = self.graph.add(task_id=tid, name=f"{name}({suffix})", cost=0.0, deps=dep_sids)
            skipped_fut = SimFuture(self, name=name)
            skipped_fut.meta["last_sid"] = seg.sid
            skipped_fut.meta["tid"] = tid
            return skipped_fut

        if cancelled_dep is not None:
            # Cancellation cascades: a cancelled dep *cancels* the
            # dependent — same contract as the other backends.
            fut = skipped("dep-cancelled")
            fut.cancel(f"dependency {cancelled_dep.name!r} was cancelled")
            self._emit_cancel(fut)
            return fut
        if failed_dep is not None:
            # A failed dependency fails the dependent task without
            # running it.
            fut = skipped("dep-failed")
            fut.set_exception(failed_dep)
            return fut
        if cancel is not None and cancel.cancelled:
            fut = skipped("cancelled")
            fut.cancel(f"token {cancel.name!r} cancelled")
            self._emit_cancel(fut)
            return fut
        if deadline == 0:
            fut = skipped("deadline")
            fut.cancel(DeadlineExceeded(f"task {name!r} missed its deadline"))
            self._emit_cancel(fut)
            return fut
        if self.faults is not None and self.faults.should_fail_task("sim", tid):
            if self.trace.enabled:
                self.trace.event("fault", name, task_id=tid)
                self.trace.count("sim.faults_injected")
            fut = skipped("faulted")
            fut.set_exception(InjectedFault(f"task {name!r} failed by fault plan"))
            return fut

        first = self.graph.add(task_id=tid, name=name, cost=float(cost or 0.0), deps=dep_sids)
        self.trace.count("sim.tasks_recorded")
        ctx = _TaskCtx(task_id=tid, current_sid=first.sid)
        fut = SimFuture(self, name=name)
        fut.meta["tid"] = tid
        fut.try_start()

        self._stack.append(ctx)
        try:
            with scoped_token(cancel):
                value = fn(*args, **kwargs)
        except Exception as exc:
            fut.meta["last_sid"] = ctx.current_sid
            self._stack.pop()
            if _rtrace.active() is not None:
                # declared-cost virtual span, stamped before completion
                # so done-callbacks can read it (API parity with threads)
                fut.meta["rt_span"] = (0.0, float(cost or 0.0), 0)
            fut.set_exception(exc)
            return fut
        fut.meta["last_sid"] = ctx.current_sid
        self._stack.pop()
        if _rtrace.active() is not None:
            fut.meta["rt_span"] = (0.0, float(cost or 0.0), 0)
        fut.set_result(value)
        return fut

    def _emit_cancel(self, fut: SimFuture) -> None:
        if self.trace.enabled:
            self.trace.event(
                "cancel",
                fut.name,
                task_id=fut.meta.get("tid", 0),
                exception=type(Future.exception(fut)).__name__,
            )
            self.trace.count("sim.cancelled")

    def compute(self, cost: float) -> None:
        if cost < 0:
            raise ValueError(f"cost must be >= 0, got {cost}")
        self.graph.add_cost(self._top().current_sid, cost)

    @contextmanager
    def critical(self, name: str = "default") -> Iterator[None]:
        ctx = self._top()
        crit_sid = self._split(ctx, f"crit:{name}")
        self._lock_acquisitions.setdefault(name, []).append(crit_sid)
        try:
            yield
        finally:
            self._split(ctx, f"postcrit:{name}")

    def barrier(self, key: str, parties: int) -> None:
        """Record a rendezvous arrival; wires cross edges once all arrive."""
        if parties < 1:
            raise ValueError(f"parties must be >= 1, got {parties}")
        ctx = self._top()
        pre_sid = ctx.current_sid
        post_sid = self._split(ctx, f"bar:{key}")
        gen_key = (key, ctx.task_id)
        generation = self._barrier_generation.get(gen_key, 0)
        self._barrier_generation[gen_key] = generation + 1
        generations = self._barrier_arrivals.setdefault(key, {})
        arrivals = generations.setdefault(generation, [])
        arrivals.append((pre_sid, post_sid))
        if len(arrivals) == parties:
            for _, post in arrivals:
                for pre, _ in arrivals:
                    if pre != post and pre not in self.graph[post].deps:
                        self.graph.add_dep(post, pre)
            del generations[generation]
        elif len(arrivals) > parties:
            raise RuntimeError(
                f"barrier {key!r} generation {generation}: more arrivals than parties={parties}"
            )

    def task_id(self) -> int:
        return self._top().task_id

    # -- evaluation -------------------------------------------------------------

    def pending_barriers(self) -> list[str]:
        """Barrier keys with an incomplete rendezvous (a bug in the program)."""
        return [k for k, gens in self._barrier_arrivals.items() if any(gens.values())]

    def schedule(
        self, machine: MachineSpec | None = None, policy: str | None = None
    ) -> ScheduleResult:
        """Schedule the recorded graph; defaults to this executor's machine.

        May be called repeatedly with different machines to sweep core
        counts over a single recording.
        """
        incomplete = self.pending_barriers()
        if incomplete:
            raise RuntimeError(f"incomplete barrier rendezvous on keys {incomplete!r}")
        graph = self.graph
        if self._lock_acquisitions:
            # Wire each lock's serialisation chain on a copy (the live
            # graph may still grow, and the order can change as it does).
            #
            # Soundness: a section's DAG depth (longest edge-count path
            # from the roots) strictly exceeds every ancestor's, so
            # ordering by depth is a linear extension of the recorded
            # precedence — no cycles.  Fairness: concurrent tasks' k-th
            # sections share a depth band and therefore interleave,
            # instead of one task's whole sequence chaining first.  Ties
            # break by (task, sid), identically for every lock, so chains
            # of different locks cannot disagree on equal-depth order.
            graph = graph.copy()
            depth = self._segment_depths(graph)
            for acquisitions in self._lock_acquisitions.values():
                chain = sorted(
                    acquisitions, key=lambda sid: (depth[sid], graph[sid].task_id, sid)
                )
                for prev_sid, next_sid in zip(chain, chain[1:]):
                    graph.add_dep(next_sid, prev_sid)
        result = simulate_schedule(graph, machine or self.machine, policy=policy or self.policy)
        if self.trace.enabled:
            self._emit_schedule_trace(graph, result)
        return result

    def _emit_schedule_trace(self, graph: SegmentGraph, result: ScheduleResult) -> None:
        """Emit one trace group of virtual-time spans for a schedule.

        Every cost-carrying segment becomes a complete span on its core's
        lane.  Zero-cost synchronisation segments keep their own kinds
        (``barrier`` / ``critical`` / ``join``, recognised by the name
        prefixes the recorder writes) so rendezvous and lock hand-offs
        are visible.  A segment placed on a different core than the one
        that ran its task's previous segment (or, for a task's first
        segment, its spawn parent) is a *migration* — the virtual-time
        analogue of a work steal — and is emitted as a ``steal`` instant.
        """
        trace = self.trace
        self._schedule_count += 1
        group = trace.new_group(
            f"{result.machine.name} schedule#{self._schedule_count} ({self.policy})",
            cores=result.machine.cores,
        )
        # Authoritative schedule-level numbers: the analyzer prefers these
        # exact figures over reconstructing them from the span stream, and
        # the speedup-model fit reads (cores, makespan) pairs from them.
        trace.event(
            "sched",
            "schedule_summary",
            ts=0.0,
            group=group,
            cores=result.machine.cores,
            makespan=result.makespan,
            work=result.total_work,
            span=result.critical_path,
            utilization=result.utilization,
            policy=self.policy,
        )
        first_seg_of_task: dict[int, bool] = {}
        last_core_of_task: dict[int, int] = {}
        for sid in range(result.n_segments):
            seg = graph[sid]
            core = result.cores[sid]
            start, finish = result.starts[sid], result.finishes[sid]
            prefix = seg.name.split(":", 1)[0]
            kind = {"bar": "barrier", "crit": "critical", "postcrit": "critical", "join": "join"}.get(
                prefix, "task"
            )
            prev_core = last_core_of_task.get(seg.task_id)
            if prev_core is None and seg.deps:
                prev_core = result.cores[seg.deps[0]]  # the spawning segment
            if prev_core is not None and prev_core != core:
                trace.event(
                    "steal",
                    f"migrate:task{seg.task_id}",
                    ts=start,
                    task_id=seg.task_id,
                    worker=core,
                    group=group,
                    from_core=prev_core,
                )
                trace.count("sim.migrations")
            last_core_of_task[seg.task_id] = core
            span_attrs: dict[str, object] = {}
            if not first_seg_of_task.get(seg.task_id):
                first_seg_of_task[seg.task_id] = True
                if seg.deps:
                    # Spawn edge: the first segment's first dependency is
                    # the spawning segment of the parent task.
                    span_attrs["parent"] = graph[seg.deps[0]].task_id
            if seg.cost > 0 or kind != "task":
                trace.emit_span(
                    kind, seg.name, start, finish, task_id=seg.task_id, worker=core,
                    group=group, **span_attrs,
                )
            if kind == "barrier":
                trace.event(
                    "barrier", seg.name, ts=finish, task_id=seg.task_id, worker=core, group=group
                )
                trace.count("sim.barrier_passes")
        trace.count("sim.schedules")
        trace.set_gauge("sim.makespan", result.makespan)
        trace.set_gauge("sim.utilization", result.utilization)
        trace.observe("sim.schedule_makespans", result.makespan)

    @staticmethod
    def _segment_depths(graph: SegmentGraph) -> list[int]:
        """Longest edge-count distance from the roots, per segment."""
        depth = [0] * len(graph)
        for sid in graph.topological_order():
            seg = graph[sid]
            if seg.deps:
                depth[sid] = 1 + max(depth[d] for d in seg.deps)
        return depth

    def elapsed(self) -> float:
        """Virtual makespan on this executor's machine."""
        return self.schedule().makespan

    def __repr__(self) -> str:
        return (
            f"SimExecutor({self.machine.name}, tasks={self._task_counter}, "
            f"segments={len(self.graph)})"
        )
