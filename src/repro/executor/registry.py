"""An open registry of executor backends.

Historically :func:`repro.executor.create` was a closed three-way
``if/elif`` over ``("inline", "threads", "sim")``; adding a backend meant
editing the factory.  This module replaces that with a *registry*: a
backend is a named :class:`Backend` descriptor — a builder callable, a
:class:`BackendCapabilities` declaration, the option names it accepts —
and anything (including code outside this repository) can add one with
:func:`register_backend` without touching the factory.

The capability declaration is what orchestration layers branch on: a
sweep that wants *measured* speedup filters for ``real_parallel``, a
deterministic golden test insists on ``virtual_time``, a serving layer
that isolates tenants requires ``out_of_process``.  Capabilities describe
what the backend *supports*, not what a given configuration enables.

The built-in backends (``inline``/``threads``/``sim``/``processes``) are
registered by :mod:`repro.executor.factory` at import time; user code
normally goes through :func:`repro.executor.create` and only meets this
module when registering a new substrate::

    from repro.executor.registry import BackendCapabilities, register_backend

    register_backend(
        "mycluster",
        build_cluster_executor,          # ExecutorConfig -> Executor
        capabilities=BackendCapabilities(real_parallel=True, out_of_process=True),
        options=("scheduler", "hosts"),
        aliases=("cluster",),
    )
    create("mycluster", cores=32, scheduler="fifo")
"""

from __future__ import annotations

import threading
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # avoid the cycle: factory imports this module
    from repro.executor.base import Executor
    from repro.executor.factory import ExecutorConfig

__all__ = [
    "Backend",
    "BackendCapabilities",
    "available",
    "backend_aliases",
    "get_backend",
    "register_backend",
    "resolve_kind",
    "unregister_backend",
]


@dataclass(frozen=True)
class BackendCapabilities:
    """What an execution substrate can do, declared up front.

    Parameters
    ----------
    real_parallel:
        Tasks can make simultaneous progress on multiple hardware cores
        (wall-clock speedup is *measured*, not simulated).  False for
        GIL-bound threads and for virtual time.
    virtual_time:
        The backend schedules declared costs on a machine model and
        reports virtual seconds — deterministic speedup *shapes*.
    out_of_process:
        Task bodies run outside the submitting process (argument/result
        transport and cancellation cross a process boundary).
    cancel / deadline / faults:
        The task-lifecycle features of :mod:`repro.resilience` the
        backend honours: queued-task cancellation via tokens, start
        deadlines, and seeded :class:`~repro.resilience.FaultPlan`
        injection.
    barriers:
        ``executor.barrier(key, parties)`` performs a real rendezvous.
    """

    real_parallel: bool = False
    virtual_time: bool = False
    out_of_process: bool = False
    cancel: bool = True
    deadline: bool = True
    faults: bool = True
    barriers: bool = True

    def describe(self) -> str:
        """Short ``+flag`` summary, e.g. ``"+real-parallel +out-of-process"``."""
        names = (
            ("real_parallel", "real-parallel"),
            ("virtual_time", "virtual-time"),
            ("out_of_process", "out-of-process"),
            ("cancel", "cancel"),
            ("deadline", "deadline"),
            ("faults", "faults"),
            ("barriers", "barriers"),
        )
        return " ".join(f"+{label}" for attr, label in names if getattr(self, attr))


@dataclass(frozen=True)
class Backend:
    """One registered execution substrate.

    ``builder`` receives the validated :class:`ExecutorConfig` and returns
    a live :class:`~repro.executor.base.Executor`.  ``options`` is the
    closed set of backend-specific keyword options the config accepts for
    this kind (unknown options are rejected eagerly at config time).
    ``single_core`` marks definitionally sequential backends (they reject
    ``cores`` other than 1); ``accepts_machine`` is False for backends
    that have no use for a :class:`~repro.machine.spec.MachineSpec` at
    all (machine-driven *defaults* are handled by the builder).
    """

    name: str
    builder: Callable[["ExecutorConfig"], "Executor"] = field(compare=False)
    capabilities: BackendCapabilities = field(default_factory=BackendCapabilities)
    options: frozenset[str] = frozenset()
    aliases: tuple[str, ...] = ()
    single_core: bool = False
    accepts_machine: bool = True
    summary: str = ""


_lock = threading.Lock()
_backends: dict[str, Backend] = {}  # insertion-ordered: registration order
_aliases: dict[str, str] = {}


def register_backend(
    name: str,
    builder: Callable[["ExecutorConfig"], "Executor"],
    *,
    capabilities: BackendCapabilities | None = None,
    options: Sequence[str] = (),
    aliases: Sequence[str] = (),
    single_core: bool = False,
    accepts_machine: bool = True,
    summary: str = "",
    replace: bool = False,
) -> Backend:
    """Add (or with ``replace=True`` swap) a backend under ``name``.

    ``name`` and every alias must be unused (unless replacing the same
    canonical name); collisions raise ``ValueError`` eagerly so a typo'd
    registration fails at import time, not at first ``create()``.
    """
    if not name or not name.isidentifier():
        raise ValueError(f"backend name must be an identifier, got {name!r}")
    backend = Backend(
        name=name,
        builder=builder,
        capabilities=capabilities if capabilities is not None else BackendCapabilities(),
        options=frozenset(options),
        aliases=tuple(aliases),
        single_core=single_core,
        accepts_machine=accepts_machine,
        summary=summary,
    )
    with _lock:
        if not replace and name in _backends:
            raise ValueError(f"backend {name!r} is already registered")
        for alias in backend.aliases:
            owner = _aliases.get(alias)
            if alias in _backends or (owner is not None and owner != name):
                raise ValueError(f"backend alias {alias!r} collides with an existing registration")
        if replace:
            # Drop aliases the previous registration owned but the new one no longer claims.
            for alias in [a for a, target in _aliases.items() if target == name]:
                del _aliases[alias]
        _backends[name] = backend
        for alias in backend.aliases:
            _aliases[alias] = name
    return backend


def unregister_backend(name: str) -> None:
    """Remove ``name`` and its aliases (primarily for tests)."""
    with _lock:
        backend = _backends.pop(name, None)
        if backend is None:
            raise ValueError(f"backend {name!r} is not registered")
        for alias in backend.aliases:
            _aliases.pop(alias, None)


def resolve_kind(kind: str) -> str:
    """Canonical backend name for ``kind`` (which may be an alias).

    Unknown kinds raise ``ValueError`` naming every registered backend
    *and* its aliases, so the error is self-documenting::

        unknown executor kind 'gpu'; registered backends: inline,
        processes (aliases: mp, process), sim (aliases: simulated,
        virtual), threads (aliases: pool, thread)
    """
    with _lock:
        if kind in _backends:
            return kind
        target = _aliases.get(kind)
        if target is not None:
            return target
        listing = ", ".join(
            name + (f" (aliases: {', '.join(sorted(b.aliases))})" if b.aliases else "")
            for name, b in sorted(_backends.items())
        )
    raise ValueError(f"unknown executor kind {kind!r}; registered backends: {listing}")


def get_backend(kind: str) -> Backend:
    """The :class:`Backend` descriptor for ``kind`` (aliases resolved)."""
    name = resolve_kind(kind)
    with _lock:
        return _backends[name]


def available() -> tuple[str, ...]:
    """Canonical names of every registered backend, in registration order."""
    with _lock:
        return tuple(_backends)


def backend_aliases() -> dict[str, str]:
    """A copy of the alias table (alias -> canonical name)."""
    with _lock:
        return dict(_aliases)


class KindsView(Sequence):
    """A live, read-only sequence view of :func:`available`.

    ``repro.executor.KINDS`` has historically been a tuple; keeping it a
    *sequence* (``in``, ``len``, iteration, indexing all work) that reads
    the registry on every access means code holding an imported ``KINDS``
    reference sees backends registered after the import.
    """

    def __getitem__(self, index):  # type: ignore[override]
        return available()[index]

    def __len__(self) -> int:
        return len(available())

    def __contains__(self, kind: object) -> bool:
        return kind in available()

    def __eq__(self, other: object) -> bool:
        return tuple(self) == other if isinstance(other, (tuple, list)) else NotImplemented

    def __repr__(self) -> str:
        return repr(available())
