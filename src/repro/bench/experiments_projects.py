"""Experiments regenerating projects 1–5 (paper §IV-C).

Speedups are virtual-time (DESIGN.md §2): a workload is recorded once on
the simulated executor and scheduled onto PARC64 scaled to each core
count, so the series are deterministic and the *shapes* — who wins, by
what factor, where the knees are — are the reproduced result.
"""

from __future__ import annotations


from repro.apps import make_image_folder, make_text_corpus
from repro.apps.images import STRATEGIES, ThumbnailRenderer, scaling_cost
from repro.apps.sorting import VARIANTS, quicksort, random_array
from repro.apps.kernels import (
    LJSystem,
    fft_parallel,
    jacobi_parallel,
    matmul_parallel,
    md_step_parallel,
)
from repro.apps.kernels.graphs import bfs_levels_parallel, random_graph
from repro.apps.kernels.linalg import diagonally_dominant_system
from repro.apps.textsearch import FolderSearch
from repro.bench.common import bench_machine
from repro.bench.harness import ExperimentResult, register
from repro.executor import create
from repro.gui import simulate_ui_scenario
from repro.machine import PARC64
from repro.pyjama import Pyjama, get_reduction
from repro.util.rng import derive
from repro.util.stats import speedup
from repro.util.tables import Table

__all__ = [
    "run_proj1_thumbnails",
    "run_proj2_quicksort",
    "run_proj3_kernels",
    "run_proj4_textsearch",
    "run_proj5_reductions",
]

CORE_SWEEP = (1, 2, 4, 8, 16, 32, 64)


def _machine(cores: int):
    return bench_machine(cores)


@register("proj1", "thumbnails of images in a folder", "Section IV-C project 1")
def run_proj1_thumbnails(seed: int = 2013) -> ExperimentResult:
    images = make_image_folder(48, seed=seed, min_side=24, max_side=160)

    perf = Table(
        ["strategy"] + [f"{p} cores" for p in CORE_SWEEP],
        title="project 1: thumbnail rendering time (virtual s) by strategy and cores",
        precision=4,
    )
    t_serial: dict[int, float] = {}
    for strategy in STRATEGIES:
        row: list[object] = [strategy]
        for cores in CORE_SWEEP:
            ex = create("sim", machine=_machine(cores))
            ThumbnailRenderer(ex, target_side=24).render(images, strategy=strategy)
            t = ex.elapsed()
            if strategy == "sequential":
                t_serial[cores] = t
            row.append(t)
        perf.add_row(row)

    speedups = Table(
        ["strategy"] + [f"S({p})" for p in CORE_SWEEP],
        title="project 1: speedup vs sequential",
        precision=2,
    )
    for row in perf.rows[1:]:  # parallel strategies
        speedups.add_row(
            [row[0]] + [speedup(t_serial[p], row[i + 1]) for i, p in enumerate(CORE_SWEEP)]
        )

    # The responsiveness half of the brief: "the GUI remains fully
    # responsive ... the user could scroll while thumbnails were rendered".
    jobs = [scaling_cost(img) * 2e4 for img in images]  # scaled into visible seconds
    resp = Table(
        ["design", "jobs makespan (s)", "event latency mean (s)", "p95 (s)", "max (s)"],
        title="project 1: GUI responsiveness while rendering (4-core device)",
        precision=4,
    )
    for strategy in ("edt", "pool"):
        rep = simulate_ui_scenario(jobs, cores=4, strategy=strategy)
        resp.add_row([strategy, rep.jobs_makespan, rep.mean_latency, rep.p95_latency, rep.max_latency])

    # "using different image input sizes": granularity via image size.
    # The per-task dispatch overhead decides whether small images are
    # worth a task each — visible by sweeping size class x dispatch cost.
    from repro.util.rng import stable_hash

    sizes = Table(
        ["image size class", "mean scale cost (s)", "S(8), 1 us dispatch", "S(8), 500 us dispatch"],
        title="project 1: input-size sweep x dispatch overhead (task granularity)",
        precision=4,
    )
    for label, (lo, hi, n) in (
        ("small (16-32 px)", (16, 32, 64)),
        ("medium (48-96 px)", (48, 96, 48)),
        ("large (128-256 px)", (128, 256, 32)),
    ):
        folder = make_image_folder(n, seed=seed + stable_hash(label) % 97, min_side=lo, max_side=hi)
        row: list[object] = [label, sum(scaling_cost(img) for img in folder) / n]
        for overhead in (1e-6, 5e-4):
            machine1 = bench_machine(1, dispatch_overhead=overhead)
            machine8 = bench_machine(8, dispatch_overhead=overhead)
            ex1 = create("sim", machine=machine1)
            ThumbnailRenderer(ex1, target_side=16).render(folder, strategy="sequential")
            ex8 = create("sim", machine=machine8)
            ThumbnailRenderer(ex8, target_side=16).render(folder, strategy="ptask")
            row.append(speedup(ex1.elapsed(), ex8.elapsed()))
        sizes.add_row(row)

    # The Android option: the same app on the paper's device catalogue.
    from repro.machine import ANDROID_PHONE, ANDROID_TABLET, LAB_WORKSTATION

    devices = Table(
        ["device", "cores", "sequential (virtual s)", "ptask (virtual s)", "speedup"],
        title="project 1 (Android option): same app across the device catalogue",
        precision=4,
    )
    for device in (LAB_WORKSTATION, ANDROID_TABLET, ANDROID_PHONE):
        ex_seq = create("sim", machine=device)
        ThumbnailRenderer(ex_seq, target_side=24).render(images, strategy="sequential")
        t_seq = ex_seq.elapsed()
        ex_par = create("sim", machine=device)
        ThumbnailRenderer(ex_par, target_side=24).render(images, strategy="ptask")
        t_par = ex_par.elapsed()
        devices.add_row([device.name, device.cores, t_seq, t_par, speedup(t_seq, t_par)])

    return ExperimentResult(
        exp_id="proj1",
        tables=(perf, speedups, resp, sizes, devices),
        notes="expected shape: all parallel strategies beat sequential and scale with "
        "cores until image skew/lane caps bind; the pool design keeps event latency "
        "orders of magnitude below the run-on-EDT design; on the quad-core Android "
        "devices the same code still wins, but their heavier task dispatch erodes "
        "the speedup - the granularity lesson resurfacing on mobile",
    )


@register("proj2", "parallel quicksort three ways", "Section IV-C project 2")
def run_proj2_quicksort(seed: int = 2013, n: int = 12_000) -> ExperimentResult:
    data = random_array(n, seed=seed)

    perf = Table(
        ["variant"] + [f"{p} cores" for p in CORE_SWEEP],
        title=f"project 2: quicksort of {n} numbers, time (virtual s)",
        precision=4,
    )
    t1_by_variant: dict[str, float] = {}
    for variant in VARIANTS:
        row: list[object] = [variant]
        for cores in CORE_SWEEP:
            ex = create("sim", machine=_machine(cores))
            out = quicksort(ex, data, variant=variant, cutoff=128)
            assert out == sorted(data)
            t = ex.elapsed()
            if cores == 1:
                t1_by_variant[variant] = t
            row.append(t)
        perf.add_row(row)

    cutoffs = Table(
        ["cutoff", "time on 8 cores (virtual s)", "tasks spawned"],
        title="project 2: cutoff (granularity) sweep, ptask variant",
        precision=4,
    )
    for cutoff in (8, 32, 128, 512, 2048):
        ex = create("sim", machine=_machine(8))
        quicksort(ex, data, variant="ptask", cutoff=cutoff)
        cutoffs.add_row([cutoff, ex.elapsed(), ex._task_counter])

    return ExperimentResult(
        exp_id="proj2",
        tables=(perf, cutoffs),
        notes="expected shape: every parallel variant beats sequential; speedup is "
        "sublinear (the top-level partition is serial - Amdahl); too-small cutoffs "
        "pay dispatch overhead, too-large ones starve the cores",
    )


@register("proj3", "computational kernels in Pyjama", "Section IV-C project 3")
def run_proj3_kernels(seed: int = 2013) -> ExperimentResult:
    rng = derive(seed, "bench-kernels")
    cases = []

    x = rng.random(512)
    cases.append(("fft-512", lambda omp: fft_parallel(x, omp, schedule="static")))

    a, b = rng.random((96, 96)), rng.random((96, 96))
    cases.append(("matmul-96", lambda omp: matmul_parallel(a, b, omp, block=8)))

    cases.append(
        ("md-128", lambda omp: md_step_parallel(LJSystem.random(128, seed=seed), omp))
    )

    adj = random_graph(600, avg_degree=8, seed=seed)
    cases.append(("bfs-600", lambda omp: bfs_levels_parallel(adj, 0, omp)))

    ja, jb = diagonally_dominant_system(192, seed=seed)
    cases.append(("jacobi-192", lambda omp: jacobi_parallel(ja, jb, omp, block=12)))

    table = Table(
        ["kernel"] + [f"{p} cores" for p in (1, 2, 4, 8, 16)] + ["S(16)"],
        title="project 3: kernel time (virtual s) under Pyjama parallel_for",
        precision=4,
    )
    for name, fn in cases:
        times = []
        for cores in (1, 2, 4, 8, 16):
            omp = Pyjama(create("sim", machine=_machine(cores)), num_threads=cores)
            fn(omp)
            times.append(omp.executor.elapsed())
        table.add_row([name] + times + [speedup(times[0], times[-1])])

    return ExperimentResult(
        exp_id="proj3",
        tables=(table,),
        notes="expected shape: every kernel speeds up with cores; BFS scales worst "
        "(frontier barriers each level), matmul/MD best (wide independent loops)",
    )


@register("proj4", "string search in a folder", "Section IV-C project 4")
def run_proj4_textsearch(seed: int = 2013) -> ExperimentResult:
    corpus = make_text_corpus(80, seed=seed, hit_rate=0.02)

    perf = Table(
        ["cores", "search time (virtual s)", "speedup", "matches found", "streamed interim results"],
        title=f"project 4: parallel folder search over {len(corpus.files)} files "
        f"({corpus.total_lines} lines)",
        precision=4,
    )
    t1 = None
    for cores in CORE_SWEEP:
        streamed: list[object] = []
        ex = create("sim", machine=_machine(cores))
        results = FolderSearch(ex, on_match=streamed.append).search(corpus)
        t = ex.elapsed()
        if t1 is None:
            t1 = t
        perf.add_row([cores, t, speedup(t1, t), len(results), len(streamed)])

    resp = Table(
        ["design", "event latency mean (s)", "p95 (s)"],
        title="project 4: UI responsiveness during the search (4-core laptop)",
        precision=4,
    )
    from repro.apps.textsearch import search_cost

    jobs = [search_cost(f) * 2e4 for f in corpus.files]
    for strategy in ("edt", "pool"):
        rep = simulate_ui_scenario(jobs, cores=4, strategy=strategy)
        resp.add_row([strategy, rep.mean_latency, rep.p95_latency])

    return ExperimentResult(
        exp_id="proj4",
        tables=(perf, resp),
        notes="expected shape: near-linear speedup (files are independent) flattening "
        "at high core counts (per-file skew); every match also streamed while the "
        "search ran; pool design keeps the UI responsive",
    )


@register("proj5", "reductions in Pyjama", "Section IV-C project 5")
def run_proj5_reductions(seed: int = 2013) -> ExperimentResult:
    rng = derive(seed, "bench-reductions")
    n = 4000
    numbers = rng.integers(0, 1000, size=n).tolist()
    words = [f"w{int(v) % 97}" for v in numbers]

    matrix = Table(
        ["reduction", "input type", "parallel == sequential fold", "example result"],
        title="project 5: the object-reduction matrix (correctness across schedules)",
    )
    cases = [
        ("+", numbers, lambda x: x),
        ("*", [1] * 50 + [2] * 10, lambda x: x),
        ("min", numbers, lambda x: x),
        ("max", numbers, lambda x: x),
        ("list", numbers[:200], lambda x: [x]),
        ("set", words, lambda x: x),
        ("counter", words, lambda x: x),
        ("dict", list(enumerate(words[:200])), lambda kv: {kv[0]: kv[1]}),
        ("str", [w[0] for w in words[:100]], lambda x: x),
        ("merge_sorted", sorted(numbers[:100]), lambda x: [x]),
    ]
    for name, items, body in cases:
        red = get_reduction(name)
        reference = red.fold([body(x) for x in items])
        ok = True
        for schedule in ("static", "dynamic", "guided"):
            omp = Pyjama(create("sim", machine=_machine(8)), num_threads=8)
            out = omp.parallel_for(items, body, schedule=schedule, reduction=name, chunk_size=16)
            ok = ok and (out == reference)
        shown = repr(reference)
        matrix.add_row([name, type(items[0]).__name__, ok, shown[:40] + ("..." if len(shown) > 40 else "")])

    # why reductions exist: vs a critical-section accumulator
    contention = Table(
        ["approach", "cores", "time (virtual s)"],
        title="project 5: '+' reduction vs critical-section accumulation (the efficiency claim)",
        precision=4,
    )
    for cores in (1, 8):
        omp = Pyjama(create("sim", machine=_machine(cores)), num_threads=cores)
        omp.parallel_for(
            numbers, lambda x: x, reduction="+", schedule="static", cost_fn=lambda _x: 2e-5
        )
        contention.add_row(["reduction", cores, omp.executor.elapsed()])
    for cores in (1, 8):
        ex = create("sim", machine=_machine(cores))
        omp = Pyjama(ex, num_threads=cores)
        box = {"total": 0}

        def add_locked(x):
            with ex.critical("acc"):
                ex.compute(2e-5)
                box["total"] += x

        omp.parallel_for(numbers, add_locked, schedule="static")
        contention.add_row(["critical section", cores, ex.elapsed()])

    return ExperimentResult(
        exp_id="proj5",
        tables=(matrix, contention),
        notes="expected shape: all reductions match their sequential folds under all "
        "schedules; the reduction scales with cores while the critical-section "
        "accumulator stays serial",
    )
