"""Real multi-core speedup: the processes backend against inline and sim.

Everything else in the bench measures *virtual* time — the machine model
prices the work, so the GIL never shows up.  This experiment closes the
loop the course promises: the same flat workloads (matmul row panels,
samplesort buckets, thumbnail scaling) run on

* ``inline`` — the sequential wall-clock baseline;
* ``processes`` — real worker processes behind the same Executor API,
  arrays travelling through the shared-memory plane; and
* ``sim`` — the virtual-time prediction for the same core count.

The table puts measured wall-clock speedup next to the sim-predicted
speedup, which is the pedagogical punchline: the model says what *should*
happen, the process pool shows what *does* happen on your actual cores.
On a single-core host the measured column collapses to ~1x while the
predicted column keeps its shape — also a lesson.

Every executor run is wrapped in a :class:`RetryPolicy` that retries on
:class:`InjectedFault` only, so ``python -m repro chaos real_speedup
--task-failure-rate 0.15 --expect fault,retry`` demonstrates recovery:
faults injected inside worker processes surface to the parent, the whole
row retries (fresh task ids draw fresh fault coin-flips), and both
``fault`` and ``retry`` events land in the merged trace.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.apps.images import scale_pixels, scaling_cost
from repro.apps.kernels.matmul import matmul_tasks
from repro.apps.sorting import quicksort_chunks, random_array
from repro.bench.common import bench_machine
from repro.bench.harness import ExperimentResult, register
from repro.executor import create
from repro.resilience import InjectedFault, RetryPolicy
from repro.util.rng import derive
from repro.util.stats import speedup

__all__ = ["run_real_speedup", "default_cores"]

#: retries are free (no backoff): a retried row re-submits with fresh
#: task ids, so the seeded fault plan rolls fresh coin-flips each time
ROW_RETRY = RetryPolicy(
    max_attempts=20, base_delay=0.0, max_delay=0.0, jitter=0.0, retry_on=(InjectedFault,)
)


def default_cores() -> int:
    """Worker count for the demo: 2..4, even on a single-core host.

    Two workers on one core still demonstrates the API and the transport
    (and the table will honestly show speedup ~1x); more than four adds
    spawn cost without changing the story.
    """
    return min(4, max(2, os.cpu_count() or 1))


def _workloads(seed: int):
    """The three flat workloads as (label, runner(executor)) pairs.

    Each runner is a pure function of its executor so the same closure
    times inline, processes and sim runs; returned values feed the
    cross-backend correctness check.
    """
    rng = derive(seed, "real-speedup")
    a = rng.random((1536, 1536))
    b = rng.random((1536, 1536))
    values = np.asarray(random_array(1_000_000, seed=seed))
    images = [
        (f"img_{i:02d}", rng.random((side, side)))
        for i, side in enumerate(int(s) for s in rng.integers(768, 1536, size=8))
    ]

    def matmul_row(ex):
        return matmul_tasks(a, b, ex, block=192)

    def sort_row(ex):
        return quicksort_chunks(ex, values, chunks=max(2, ex.cores))

    def thumbs_row(ex):
        futures = [
            ex.submit(
                scale_pixels,
                pixels,
                name,
                128,
                cost=scaling_cost_for(pixels),
                name=f"thumb[{name}]",
            )
            for name, pixels in images
        ]
        return tuple(t.checksum for t in (f.result() for f in futures))

    def scaling_cost_for(pixels):
        from repro.apps.corpus import SyntheticImage

        return scaling_cost(SyntheticImage(name="x", pixels=pixels))

    return [
        ("matmul 1536x1536 (8 panels)", matmul_row),
        ("samplesort 1M", sort_row),
        ("thumbnails x8", thumbs_row),
    ]


def _timed(label: str, runner, executor) -> tuple[float, object]:
    """Wall-clock one workload run under the row retry policy."""
    t0 = time.perf_counter()
    out = ROW_RETRY.run(runner, executor, key=label)
    return time.perf_counter() - t0, out


def _same(label: str, expect, got) -> None:
    if isinstance(expect, np.ndarray):
        ok = np.allclose(expect, np.asarray(got))
    else:
        ok = all(abs(x - y) < 1e-9 for x, y in zip(expect, got)) and len(expect) == len(got)
    if not ok:
        raise AssertionError(f"{label}: processes backend disagrees with inline baseline")


@register(
    "real_speedup",
    "real wall-clock speedup: processes backend vs inline, with sim predictions",
    "Section V: beyond the GIL",
)
def run_real_speedup(seed: int = 2014, cores: int | None = None) -> ExperimentResult:
    n = cores if cores is not None else default_cores()
    workloads = _workloads(seed)

    table_cols = [
        "workload",
        "inline (s)",
        f"processes x{n} (s)",
        "measured speedup",
        "sim-predicted speedup",
    ]
    from repro.util.tables import Table

    table = Table(table_cols, title=f"real vs simulated speedup ({n} workers)", precision=3)

    # Sim predictions first (cheap, deterministic): virtual makespan at 1
    # core vs at n cores, same machine model as the rest of the bench.
    predicted = {}
    for label, runner in workloads:
        with create("sim", machine=bench_machine(1)) as s1:
            ROW_RETRY.run(runner, s1, key=f"{label}/sim1")
            t1 = s1.elapsed()
        with create("sim", machine=bench_machine(n)) as sn:
            ROW_RETRY.run(runner, sn, key=f"{label}/sim{n}")
            tn = sn.elapsed()
        predicted[label] = speedup(t1, tn)

    inline_times = {}
    baselines = {}
    with create("inline") as ex:
        for label, runner in workloads:
            inline_times[label], baselines[label] = _timed(f"{label}/inline", runner, ex)

    # One shared pool for every row: spawn cost is paid once, and the
    # warm-up tasks below pay each worker's import cost (numpy et al)
    # before any timer starts.
    with create("processes", cores=n) as pool:
        warm = np.zeros(4)
        for f in [pool.submit(np.sum, warm, name=f"warmup[{i}]") for i in range(n)]:
            f.result()
        for label, runner in workloads:
            wall, got = _timed(f"{label}/processes", runner, pool)
            _same(label, baselines[label], got)
            table.add_row(
                [
                    label,
                    inline_times[label],
                    wall,
                    speedup(inline_times[label], wall),
                    predicted[label],
                ]
            )

    return ExperimentResult(
        exp_id="real_speedup",
        tables=(table,),
        notes=(
            "measured speedup is real wall-clock (no GIL: worker processes + shared-memory "
            "transport); the sim column is the machine model's prediction at the same core "
            "count. On a single-core host expect measured ~1x while predicted keeps its "
            "multi-core shape — the model shows what more cores would buy."
        ),
    )
