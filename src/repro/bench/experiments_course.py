"""Experiments regenerating the paper's course-side artefacts.

Covers Figure 1, Figure 2, the §III-B systems list, the §III-C
assessment weights, the §III-D allocation protocol, the §V-A Likert
figures and the §V-B semester outcomes.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult, register
from repro.course import (
    ASSESSMENT_SCHEME,
    TOPICS,
    DoodlePoll,
    SemesterConfig,
    form_groups,
    make_cohort,
    run_semester,
    run_survey,
)
from repro.course.nexus import SOFTENG751_ACTIVITIES, quadrant_coverage
from repro.course.schedule import schedule_rows
from repro.machine import PARC_MACHINES
from repro.util.tables import Table
from repro.vcs import contribution_shares

__all__ = [
    "run_fig1_nexus",
    "run_fig2_schedule",
    "run_tab_systems",
    "run_tab_assessment",
    "run_tab_allocation",
    "run_tab_likert",
    "run_semester_outcomes",
]


@register("fig1", "research-teaching nexus coverage", "Figure 1")
def run_fig1_nexus() -> ExperimentResult:
    coverage = quadrant_coverage()
    quad_table = Table(
        ["quadrant", "participation", "content emphasis", "SoftEng751 activities"],
        title="Figure 1: the research-teaching nexus (Healey) and SoftEng 751's coverage",
    )
    axis = {
        "research-led": ("audience", "research content"),
        "research-oriented": ("audience", "processes & problems"),
        "research-tutored": ("participants", "research content"),
        "research-based": ("participants", "processes & problems"),
    }
    for quadrant, (part, emph) in axis.items():
        quad_table.add_row([quadrant, part, emph, ", ".join(coverage[quadrant]) or "(none - by design)"])

    activity_table = Table(
        ["activity", "quadrant"], title="per-activity classification"
    )
    for activity in SOFTENG751_ACTIVITIES:
        activity_table.add_row([activity.name, activity.quadrant])

    return ExperimentResult(
        exp_id="fig1",
        tables=(quad_table, activity_table),
        notes=(
            "research-oriented is empty by design (paper SIII-E: no direct relevance "
            "to parallel programming content; covered by other courses; low student "
            "involvement)"
        ),
    )


@register("fig2", "course structure", "Figure 2")
def run_fig2_schedule() -> ExperimentResult:
    table = Table(
        ["week", "use", "notes"],
        title="Figure 2: SoftEng 751 course structure (IT=instructor-led, A=assessment, P=project, ST=student-led)",
    )
    for label, codes, notes in schedule_rows():
        table.add_row([label, codes, notes])
    return ExperimentResult(exp_id="fig2", tables=(table,))


@register("tab_systems", "parallel systems available to students", "Section III-B")
def run_tab_systems() -> ExperimentResult:
    table = Table(
        ["machine", "cores", "relative core speed", "description"],
        title="Section III-B: shared-memory systems available to students",
    )
    for machine in PARC_MACHINES.values():
        table.add_row([machine.name, machine.cores, machine.speed, machine.description])
    return ExperimentResult(exp_id="tab_systems", tables=(table,))


@register("tab_assess", "assessment scheme", "Section III-C")
def run_tab_assessment() -> ExperimentResult:
    table = Table(["component", "weight %"], title="Section III-C: assessment scheme")
    for name, weight in ASSESSMENT_SCHEME.components().items():
        table.add_row([name, weight])
    table.add_row(["TOTAL", sum(ASSESSMENT_SCHEME.components().values())])
    summary = Table(["property", "value %"], title="scheme properties the paper highlights")
    summary.add_row(["individual lecture-material weight", ASSESSMENT_SCHEME.individual_lecture_weight])
    summary.add_row(["group-work weight", ASSESSMENT_SCHEME.group_weight])
    return ExperimentResult(exp_id="tab_assess", tables=(table, summary))


@register("tab_alloc", "doodle-poll topic allocation", "Section III-D")
def run_tab_allocation(seed: int = 2013) -> ExperimentResult:
    cohort = make_cohort(60, seed=seed)
    groups = form_groups(cohort, seed=seed)
    result = DoodlePoll().run(groups, seed=seed)

    per_topic = Table(
        ["topic", "title", "groups assigned"],
        title="Section III-D: 60 students, 20 groups of 3, 10 topics x 2 groups (FIFS poll)",
    )
    for topic in TOPICS:
        per_topic.add_row(
            [topic.number, topic.title, ", ".join(result.groups_on_topic(topic.number))]
        )

    fairness = Table(["metric", "value"], title="fairness of first-in-first-served")
    fairness.add_row(["groups allocated", len(result.assignments)])
    fairness.add_row(["groups unallocated", len(result.unallocated)])
    fairness.add_row(["mean achieved preference rank (0 = first choice)", result.mean_achieved_rank])
    fairness.add_row(["fraction getting first choice", result.first_choice_fraction()])
    return ExperimentResult(exp_id="tab_alloc", tables=(per_topic, fairness))


@register("tab_likert", "student evaluation agreement figures", "Section V-A")
def run_tab_likert(n: int = 60, seed: int = 2013) -> ExperimentResult:
    from repro.course.survey import sample_open_comments, theme_counts

    summaries = run_survey(n_respondents=n, seed=seed)
    table = Table(
        ["question", "agree+strongly agree %", "paper reports %", "mean score /5", "n"],
        title="Section V-A: end-of-course Likert evaluation (regenerated from responses)",
    )
    paper = [95, 95, 92]
    for summary, reported in zip(summaries, paper):
        table.add_row(
            [summary.question, summary.agreement_percent, reported, summary.mean_score, summary.n]
        )

    comments = sample_open_comments(n // 3, seed=seed)
    themes = Table(
        ["theme", "comments", "includes paper quote"],
        title="Section V-A: open-comments rollup (paper quotes always included)",
    )
    verbatim_themes = {c.theme for c in comments if c.verbatim}
    for theme, count in sorted(theme_counts(comments).items()):
        themes.add_row([theme, count, theme in verbatim_themes])

    return ExperimentResult(
        exp_id="tab_likert",
        tables=(table, themes),
        notes="measured column is recomputed from generated individual responses; the "
        "five verbatim student quotes from SV-A are embedded in the comment sample",
    )


@register("sem", "full-semester simulation outcomes", "Section V-B")
def run_semester_outcomes(seed: int = 2013) -> ExperimentResult:
    result = run_semester(SemesterConfig(n_students=60, seed=seed))

    outcomes = Table(["outcome", "value"], title="Section V-B: semester outcomes")
    grades = result.grade_distribution()
    outcomes.add_row(["students", len(result.students)])
    outcomes.add_row(["groups", len(result.groups)])
    outcomes.add_row(["groups allocated", len(result.allocation.assignments)])
    outcomes.add_row(["repositories passing PARC hygiene", sum(1 for h in result.hygiene.values() if h.clean)])
    outcomes.add_row(["total commits across groups", sum(r.head for r in result.repos.values())])
    outcomes.add_row(["median final grade", grades[len(grades) // 2]])
    outcomes.add_row(["grade range", f"{grades[0]:.1f}..{grades[-1]:.1f}"])
    outcomes.add_row(["masters students continuing with PARC", len(result.masters_continuing())])
    outcomes.add_row(
        ["survey agreement %", "/".join(str(s.agreement_percent) for s in result.survey)]
    )

    contribution = Table(
        ["group", "topic", "commits", "largest member share", "smallest member share"],
        title="instructor view: per-group contribution balance from subversion logs",
    )
    for group in result.groups[:8]:  # a representative slice keeps the table readable
        repo = result.repos[group.group_id]
        shares = contribution_shares(repo)
        contribution.add_row(
            [
                group.group_id,
                result.allocation.assignments[group.group_id],
                repo.head,
                max(shares.values()) if shares else 0.0,
                min(shares.values()) if shares else 0.0,
            ]
        )
    return ExperimentResult(exp_id="sem", tables=(outcomes, contribution))
