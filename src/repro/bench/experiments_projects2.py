"""Experiments regenerating projects 6–10 (paper §IV-C)."""

from __future__ import annotations

import threading

from repro.apps import make_pdf_corpus, make_website
from repro.apps.pdfsearch import GRANULARITIES, PdfSearcher
from repro.apps.webfetch import fetch_all, optimal_connections
from repro.bench.common import bench_machine
from repro.bench.harness import ExperimentResult, register
from repro.concurrentlib.model import MODELS, run_collection_workload
from repro.executor import create
from repro.memmodel import SNIPPETS, detect_races, explore, random_runs
from repro.ptask import ParallelTaskRuntime, TaskLocal, TaskSafeLock
from repro.util.stats import speedup
from repro.util.tables import Table

__all__ = [
    "run_proj6_tasksafe",
    "run_proj7_pdfsearch",
    "run_proj8_memmodel",
    "run_proj9_collections",
    "run_proj10_webaccess",
]


def _machine(cores: int):
    return bench_machine(cores)


@register("proj6", "task-aware libraries for Parallel Task", "Section IV-C project 6")
def run_proj6_tasksafe() -> ExperimentResult:
    """Thread-safe vs task-safe, as observable outcomes."""
    table = Table(
        ["scenario", "thread-keyed class", "task-safe class"],
        title="project 6: 'thread-safe' does not equal correct in a tasking model",
    )

    # scenario 1: nested task enters its parent's critical section
    ex = create("inline")
    rt = ParallelTaskRuntime(ex)
    rlock = threading.RLock()

    def parent_rlock():
        with rlock:
            return rt.spawn(lambda: rlock.acquire(blocking=False) and (rlock.release() or True)).result()

    rlock_outcome = "nested task ADMITTED" if rt.spawn(parent_rlock).result() else "blocked"

    tlock = TaskSafeLock(ex)

    def parent_tlock():
        with tlock:
            return rt.spawn(lambda: tlock.acquire(timeout=0.0)).exception()

    exc = rt.spawn(parent_tlock).result()
    tlock_outcome = "deadlock DETECTED and raised" if isinstance(exc, RuntimeError) else str(exc)
    table.add_row(["nested task vs parent's lock", rlock_outcome, tlock_outcome])

    # scenario 2: worker reuse leaks thread-locals across tasks
    with create("threads", cores=1, name="p6") as pool:
        tl_thread = threading.local()

        def observe_thread():
            seen = getattr(tl_thread, "v", "fresh")
            tl_thread.v = "dirty"
            return seen

        thread_second = [pool.submit(observe_thread).result(timeout=5) for _ in range(2)][1]

        tl_task = TaskLocal(pool, default_factory=lambda: "fresh")

        def observe_task():
            seen = tl_task.get()
            tl_task.set("dirty")
            return seen

        task_second = [pool.submit(observe_task).result(timeout=5) for _ in range(2)][1]
    table.add_row(
        [
            "second task on the same worker sees",
            f"{thread_second!r} (leak)",
            f"{task_second!r} (isolated)",
        ]
    )

    return ExperimentResult(
        exp_id="proj6",
        tables=(table,),
        notes="expected shape: the thread-keyed column misbehaves in both scenarios; "
        "the task-safe column is correct (and fails fast where blocking would deadlock)",
    )


@register("proj7", "PDF searching granularity", "Section IV-C project 7")
def run_proj7_pdfsearch(seed: int = 2013) -> ExperimentResult:
    corpus = make_pdf_corpus(16, seed=seed, pages_per_doc=(2, 160))
    biggest = max(d.n_pages for d in corpus.documents)

    perf = Table(
        ["granularity"] + [f"{p} cores" for p in (1, 2, 4, 8, 16, 32)],
        title=f"project 7: search time (virtual s) over {len(corpus.documents)} PDFs, "
        f"{corpus.total_pages} pages (largest doc {biggest} pages)",
        precision=4,
    )
    hits_per_granularity = {}
    for granularity in GRANULARITIES:
        row: list[object] = [granularity]
        for cores in (1, 2, 4, 8, 16, 32):
            ex = create("sim", machine=_machine(cores))
            hits = PdfSearcher(ex).search(corpus, granularity=granularity)
            hits_per_granularity[granularity] = len(hits)
            row.append(ex.elapsed())
        perf.add_row(row)

    agreement = Table(["granularity", "page hits found"], title="all granularities find the same hits")
    for g, n in hits_per_granularity.items():
        agreement.add_row([g, n])

    return ExperimentResult(
        exp_id="proj7",
        tables=(perf, agreement),
        notes="expected shape: per_file's speedup caps near total/biggest-document "
        "while per_page keeps scaling; per_chunk sits between; hit sets identical",
    )


@register("proj8", "Java memory model demonstrations", "Section IV-C project 8")
def run_proj8_memmodel() -> ExperimentResult:
    outcomes = Table(
        ["snippet", "buggy?", "racy?", "bad outcome under sc", "under tso", "under relaxed", "deadlock?"],
        title="project 8: can the bad outcome happen? (exhaustive exploration)",
    )

    bad_checks = {
        "lost_update": lambda res: 1 in res.shared_values("x"),
        "lost_update_locked": lambda res: 1 in res.shared_values("x"),
        "lost_update_atomic": lambda res: 1 in res.shared_values("x"),
        "store_buffering": lambda res: any(
            not o.deadlocked and o.reg(0, "r0") == 0 and o.reg(1, "r1") == 0 for o in res.outcomes
        ),
        "store_buffering_fenced": lambda res: any(
            not o.deadlocked and o.reg(0, "r0") == 0 and o.reg(1, "r1") == 0 for o in res.outcomes
        ),
        "store_buffering_volatile": lambda res: any(
            not o.deadlocked and o.reg(0, "r0") == 0 and o.reg(1, "r1") == 0 for o in res.outcomes
        ),
        "message_passing": lambda res: any(
            not o.deadlocked and o.reg(1, "rf") == 1 and o.reg(1, "rd") == 0 for o in res.outcomes
        ),
        "message_passing_volatile": lambda res: any(
            not o.deadlocked and o.reg(1, "rf") == 1 and o.reg(1, "rd") == 0 for o in res.outcomes
        ),
        "dirty_publication": lambda res: any(
            not o.deadlocked and o.reg(1, "rref") == 1 and o.reg(1, "ra") == 0 for o in res.outcomes
        ),
        "dirty_publication_volatile": lambda res: any(
            not o.deadlocked and o.reg(1, "rref") == 1 and o.reg(1, "ra") == 0 for o in res.outcomes
        ),
        "deadlock_abba": lambda res: False,
        "deadlock_ordered": lambda res: False,
    }

    race_table = Table(
        ["snippet", "races detected (vector clocks)", "racy variables"],
        title="project 8: happens-before race detection over sampled schedules",
    )

    for name, snippet in SNIPPETS.items():
        results = {m: explore(snippet.program, m) for m in ("sc", "tso", "relaxed")}
        check = bad_checks[name]
        outcomes.add_row(
            [
                name,
                snippet.buggy,
                snippet.racy,
                check(results["sc"]),
                check(results["tso"]),
                check(results["relaxed"]),
                results["sc"].has_deadlock,
            ]
        )
        _counts, traces = random_runs(snippet.program, "sc", runs=60, seed=8, collect_traces=True)
        races = detect_races(traces)
        race_table.add_row([name, len(races), ", ".join(sorted({r.var for r in races})) or "-"])

    return ExperimentResult(
        exp_id="proj8",
        tables=(outcomes, race_table),
        notes="expected shape: each buggy snippet shows its bad outcome at the weakest "
        "model that permits it and its fix removes it; detector races align with the "
        "racy column (fences fix outcomes but not races)",
    )


@register("proj9", "parallel use of collections", "Section IV-C project 9")
def run_proj9_collections(seed: int = 2013) -> ExperimentResult:
    mixes = (1.0, 0.9, 0.5, 0.0)
    table = Table(
        ["collection/sync model"] + [f"{int(m * 100)}% reads" for m in mixes],
        title="project 9: workload makespan (virtual s), 8 tasks x 300 ops, 8 cores",
        precision=5,
    )
    for name, model in MODELS.items():
        row: list[object] = [name]
        for mix in mixes:
            ex = create("sim", machine=_machine(8))
            run_collection_workload(
                ex, model, tasks=8, ops_per_task=300, read_fraction=mix, seed=seed
            )
            row.append(ex.elapsed())
        table.add_row(row)

    return ExperimentResult(
        exp_id="proj9",
        tables=(table,),
        notes="expected shape: among non-copying designs the global lock is worst at "
        "every mix and does not scale; striping wins write-heavy mixes (more stripes, "
        "more win); copy-on-write and rwlock win read-mostly, and CoW's full-copy "
        "writes make it the worst of all at write-heavy",
    )


@register("proj10", "fast web access through concurrent connections", "Section IV-C project 10")
def run_proj10_webaccess(seed: int = 2013) -> ExperimentResult:
    counts = [1, 2, 4, 8, 16, 32, 64]

    def sweep_table(site, title):
        t = Table(
            ["connections", "makespan (s)", "throughput (MB/s)", "mean page time (s)"],
            title=title,
            precision=3,
        )
        reports = [fetch_all(site, k) for k in counts]
        for r in reports:
            t.add_row(
                [r.connections, r.makespan, r.throughput_bytes_per_s / 1e6, r.mean_page_time]
            )
        return t, reports

    latency_site = make_website(
        64, seed=seed, latency_range=(0.2, 0.8), size_range=(2_000, 20_000)
    )
    t_lat, rep_lat = sweep_table(
        latency_site, "project 10: latency-bound site (big RTTs, small pages)"
    )

    bw_site = make_website(
        64,
        seed=seed + 1,
        latency_range=(0.005, 0.02),
        size_range=(200_000, 800_000),
        bandwidth_bytes_per_s=2_000_000,
    )
    t_bw, rep_bw = sweep_table(
        bw_site, "project 10: bandwidth-bound site (small RTTs, big pages)"
    )

    optimum = Table(["site profile", "optimal connections", "speedup vs 1 connection"],
                    title="project 10: how many connections should be opened?")
    for label, reports in (("latency-bound", rep_lat), ("bandwidth-bound", rep_bw)):
        best = optimal_connections(reports)
        best_makespan = min(r.makespan for r in reports)
        optimum.add_row([label, best, speedup(reports[0].makespan, best_makespan)])

    return ExperimentResult(
        exp_id="proj10",
        tables=(t_lat, t_bw, optimum),
        notes="expected shape: the latency-bound site keeps improving to high connection "
        "counts; the bandwidth-bound site plateaus almost immediately - the optimum "
        "depends on the latency/bandwidth ratio, which is the project's finding",
    )
