"""Serving-traffic experiment: the gateway under seeded load patterns.

The ten course projects measure *finishing* a fixed batch of work; this
experiment measures *absorbing* an arrival process — the regime the
ROADMAP's "serves heavy traffic" north-star cares about.  Three seeded
traffic patterns replay through :func:`repro.serve.run_serve` on the
simulated backend, so the whole table (throughput, tail latency, hit
rate, shed rate) is a deterministic function of the seed:

* ``steady``  — the happy path: no shedding, batching amortises
  dispatch, the modeled cache absorbs the hot keys;
* ``bursty``  — 3x peaks: the token bucket sheds the burst overhang
  while tail latency stays bounded;
* ``overload`` — a ramp past capacity: queue-depth backpressure takes
  over and the system degrades by shedding, never by stalling.

``python -m repro chaos serve_traffic --task-failure-rate 0.05 --expect
fault,retry`` composes fault injection with serving: injected batch
faults surface as ``fault`` events, the gateway's immediate retries as
``retry`` events, and the run still terminates with typed responses for
every request — faults-under-load is a tested regime, not a hope.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult, register
from repro.serve.loadgen import run_serve
from repro.util.tables import Table

__all__ = ["run_serve_traffic"]

#: small enough to keep the bench quick, large enough that every pattern
#: reaches its characteristic regime (the overload ramp needs ~10 s of
#: virtual time to climb past capacity)
BENCH_REQUESTS = {"steady": 4_000, "bursty": 6_000, "overload": 40_000}


@register(
    "serve_traffic",
    "Serving gateway under steady, bursty and overload traffic (sim)",
    "ROADMAP north-star; SNIPPETS.md snippets 1-2",
)
def run_serve_traffic(seed: int = 2014) -> ExperimentResult:
    table = Table(
        [
            "pattern",
            "requests",
            "throughput_rps",
            "p50_s",
            "p99_s",
            "p999_s",
            "hit_rate",
            "shed_rate",
            "mean_batch",
        ],
        title="serving gateway on sim (4 cores, virtual time)",
        precision=4,
    )
    for pattern, n in BENCH_REQUESTS.items():
        report = run_serve(pattern, backend="sim", cores=4, requests=n, seed=seed)
        table.add_row(
            [
                pattern,
                report.requests,
                round(report.throughput, 1),
                report.percentile(0.50),
                report.percentile(0.99),
                report.percentile(0.999),
                report.hit_rate,
                report.shed_rate,
                round(report.mean_batch, 2),
            ]
        )
    notes = (
        "Virtual-time serving: arrivals, service costs and the hit-rate-"
        "modelled cache are all seeded, so this table is byte-stable. "
        "steady stays under capacity (shed_rate 0); bursty sheds its peak "
        "overhang through the token bucket; overload ramps past capacity "
        "and queue-depth backpressure sheds the excess while p999 stays "
        "bounded by the queue cap. Real-backend runs of the same client "
        "code: python -m repro serve <pattern> --backend threads."
    )
    return ExperimentResult(exp_id="serve_traffic", tables=(table,), notes=notes)
