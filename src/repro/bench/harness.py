"""Experiment registry and result rendering.

Observability: running an experiment while a trace recorder is installed
(``trace=`` on executors, or ambiently via :func:`repro.obs.use` — which
is what ``python -m repro trace <exp>`` does) captures a per-experiment
metrics snapshot on the result.  With no recorder installed the result —
and its rendered report — is byte-identical to the untraced behaviour.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from typing import Any, Callable

from repro.obs import TraceAnalysis, analyze_trace, current_recorder, render_text
from repro.obs.live.sampler import current_profiler
from repro.util.tables import Table

__all__ = ["Experiment", "ExperimentResult", "register", "get_experiment", "all_experiments"]


@dataclass(frozen=True)
class ExperimentResult:
    """What one experiment produced."""

    exp_id: str
    tables: tuple[Table, ...]
    notes: str = ""
    #: metrics snapshot captured when the experiment ran under a trace
    #: recorder (name -> count/gauge value or util.stats Summary); None
    #: when observability was off.  Deliberately not part of render().
    metrics: dict[str, Any] | None = field(default=None, compare=False)
    #: trace analytics (work/span, utilization, steal stats, model fits)
    #: computed from the recorded events; None when observability was
    #: off.  Deliberately not part of render() — the bench report stays
    #: byte-identical with tracing disabled.
    analysis: TraceAnalysis | None = field(default=None, compare=False)
    #: folded sample profile (repro.obs.live) captured when the run
    #: executed under an ambient sampling profiler (``use_profiler``);
    #: None otherwise.  Like metrics/analysis, never part of render().
    profile: Any | None = field(default=None, compare=False)

    def render(self) -> str:
        parts = [f"===== experiment {self.exp_id} ====="]
        for table in self.tables:
            parts.append(table.render())
            parts.append("")
        if self.notes:
            parts.append(f"notes: {self.notes}")
        return "\n".join(parts)

    def render_metrics(self) -> str:
        """Human-readable metrics block ('' when none were captured)."""
        if not self.metrics:
            return ""
        lines = [f"----- metrics for {self.exp_id} -----"]
        for name, value in sorted(self.metrics.items()):
            lines.append(f"{name:40s} {value}")
        return "\n".join(lines)

    def render_analysis(self) -> str:
        """Terminal trace-analysis block ('' when the run was untraced)."""
        if self.analysis is None:
            return ""
        return render_text(self.analysis)

    def flat_metrics(self) -> dict[str, float]:
        """The run's flat numeric metric map, for the run-history store.

        Traced runs report the analyzer's baseline metrics (the same map
        ``python -m repro compare`` gates on); untraced perf runs fall
        back to the numeric entries of their own metrics dict.  Empty
        when the run measured nothing.
        """
        if self.analysis is not None:
            return self.analysis.baseline_metrics()
        if not self.metrics:
            return {}
        out = {}
        for name, value in self.metrics.items():
            if isinstance(value, bool):
                continue
            if isinstance(value, (int, float)):
                out[name] = float(value)
        return dict(sorted(out.items()))


@dataclass(frozen=True)
class Experiment:
    """One reproducible artefact of the paper."""

    exp_id: str
    title: str
    paper_ref: str  # e.g. "Figure 2", "Section V-A"
    run: Callable[[], ExperimentResult] = field(compare=False)
    #: perf experiments measure *wall-clock* metrics themselves (attached
    #: to ``ExperimentResult.metrics`` by the experiment body) and gate
    #: against a committed ``BENCH_*.json`` snapshot; ``python -m repro
    #: compare`` runs them untraced so recorder overhead never lands in
    #: the measured region.
    perf: bool = False

    def __call__(self) -> ExperimentResult:
        recorder = current_recorder()
        if recorder.enabled:
            with recorder.span("experiment", self.exp_id):
                result = self.run()
        else:
            result = self.run()
        if result.exp_id != self.exp_id:
            raise ValueError(
                f"experiment {self.exp_id!r} returned result tagged {result.exp_id!r}"
            )
        if recorder.enabled:
            snapshot = recorder.metrics.snapshot()
            analysis = None
            events = getattr(recorder, "events", None)
            if callable(events):  # recorders without replay just skip analytics
                analysis = analyze_trace(events(), metrics=snapshot)
            result = replace(result, metrics=snapshot, analysis=analysis)
        profiler = current_profiler()
        if profiler is not None:
            result = replace(result, profile=profiler.profile())
        return result


_registry: dict[str, Experiment] = {}
_lock = threading.Lock()


def register(
    exp_id: str, title: str, paper_ref: str, perf: bool = False
) -> Callable[[Callable[[], ExperimentResult]], Experiment]:
    """Decorator: register an experiment under ``exp_id``.

    ``perf=True`` marks a wall-clock microbench whose result carries its
    own metrics dict (see :attr:`Experiment.perf`)."""

    def deco(fn: Callable[[], ExperimentResult]) -> Experiment:
        exp = Experiment(exp_id=exp_id, title=title, paper_ref=paper_ref, run=fn, perf=perf)
        with _lock:
            if exp_id in _registry:
                raise ValueError(f"experiment {exp_id!r} already registered")
            _registry[exp_id] = exp
        return exp

    return deco


def get_experiment(exp_id: str) -> Experiment:
    """Look up a registered experiment; KeyError lists the known ids."""
    with _lock:
        if exp_id not in _registry:
            raise KeyError(f"unknown experiment {exp_id!r}; known: {sorted(_registry)}")
        return _registry[exp_id]


def all_experiments() -> list[Experiment]:
    """Every registered experiment, sorted by id."""
    with _lock:
        return [_registry[k] for k in sorted(_registry)]
