"""Experiment registry and result rendering."""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable

from repro.util.tables import Table

__all__ = ["Experiment", "ExperimentResult", "register", "get_experiment", "all_experiments"]


@dataclass(frozen=True)
class ExperimentResult:
    """What one experiment produced."""

    exp_id: str
    tables: tuple[Table, ...]
    notes: str = ""

    def render(self) -> str:
        parts = [f"===== experiment {self.exp_id} ====="]
        for table in self.tables:
            parts.append(table.render())
            parts.append("")
        if self.notes:
            parts.append(f"notes: {self.notes}")
        return "\n".join(parts)


@dataclass(frozen=True)
class Experiment:
    """One reproducible artefact of the paper."""

    exp_id: str
    title: str
    paper_ref: str  # e.g. "Figure 2", "Section V-A"
    run: Callable[[], ExperimentResult] = field(compare=False)

    def __call__(self) -> ExperimentResult:
        result = self.run()
        if result.exp_id != self.exp_id:
            raise ValueError(
                f"experiment {self.exp_id!r} returned result tagged {result.exp_id!r}"
            )
        return result


_registry: dict[str, Experiment] = {}
_lock = threading.Lock()


def register(
    exp_id: str, title: str, paper_ref: str
) -> Callable[[Callable[[], ExperimentResult]], Experiment]:
    """Decorator: register an experiment under ``exp_id``."""

    def deco(fn: Callable[[], ExperimentResult]) -> Experiment:
        exp = Experiment(exp_id=exp_id, title=title, paper_ref=paper_ref, run=fn)
        with _lock:
            if exp_id in _registry:
                raise ValueError(f"experiment {exp_id!r} already registered")
            _registry[exp_id] = exp
        return exp

    return deco


def get_experiment(exp_id: str) -> Experiment:
    """Look up a registered experiment; KeyError lists the known ids."""
    with _lock:
        if exp_id not in _registry:
            raise KeyError(f"unknown experiment {exp_id!r}; known: {sorted(_registry)}")
        return _registry[exp_id]


def all_experiments() -> list[Experiment]:
    """Every registered experiment, sorted by id."""
    with _lock:
        return [_registry[k] for k in sorted(_registry)]
