"""Pool microbenchmark: the wall-clock perf-trajectory anchor.

ROADMAP item 4 asks for committed ``BENCH_*.json`` perf snapshots so the
direction-aware regression gate (:mod:`repro.obs.baseline`) tracks the
*wall-clock* trajectory of the hot paths, not just the sim's virtual
metrics.  This module is the first such anchor: a small, repeatable
microbench of the work-stealing pool's task plumbing —

* **fanout** — ``submit`` N trivial tasks one by one and wait for all
  of them: measures per-task submit + dispatch + resolve overhead;
* **batched** — the same N tasks through ``submit_many``: measures the
  amortised batch-submission path the serving gateway rides.

Every measurement is best-of-``REPEATS`` (minimum wall time), which is
the standard microbench noise filter: the *fastest* observed run is the
one least disturbed by the machine.  Metric names carry direction
tokens (``throughput`` up is good, ``seconds`` down is good) so
``compare_to_baseline`` gates them without any schema.

``snapshot_pool_bench()`` persists the metrics to
``benchmarks/reports/BENCH_pool.json`` in the same store format as the
serve baselines — append-only history lives in git, the gate reads the
latest committed values.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.bench.harness import ExperimentResult, register
from repro.executor.threads import WorkStealingPool
from repro.util.tables import Table

__all__ = ["run_pool_micro", "pool_micro_metrics", "snapshot_pool_bench"]

#: where the trajectory snapshot lives (same format as BENCH_serve.json)
POOL_BENCH_PATH = Path("benchmarks/reports/BENCH_pool.json")

#: tasks per measured run — large enough that per-task overhead
#: dominates thread wakeup noise, small enough to keep CI fast
TASKS = 20_000

#: best-of-N runs; the minimum is the least-disturbed measurement
REPEATS = 3


def _noop(x: int) -> int:
    return x


def _measure_fanout(pool: WorkStealingPool, n: int) -> float:
    t0 = time.perf_counter()
    futures = [pool.submit(_noop, i, name="micro") for i in range(n)]
    for f in futures:
        f.result(timeout=60.0)
    return time.perf_counter() - t0


def _measure_batched(pool: WorkStealingPool, n: int) -> float:
    args = [(i,) for i in range(n)]
    t0 = time.perf_counter()
    futures = pool.submit_many(_noop, args, name="micro")
    for f in futures:
        f.result(timeout=60.0)
    return time.perf_counter() - t0


def pool_micro_metrics(
    workers: int = 4, tasks: int = TASKS, repeats: int = REPEATS
) -> dict[str, float]:
    """Run the microbench; returns direction-aware wall-clock metrics.

    Each measurement uses a fresh pool so a prior run's warm deques
    cannot flatter the next; within one measurement the pool is warmed
    by a tiny untimed burst so thread start-up never lands in the timed
    region.
    """
    fanout_best = batched_best = float("inf")
    for _ in range(repeats):
        pool = WorkStealingPool(workers=workers, name="micro")
        try:
            # Warm-up covers *both* submission paths: threads parked and
            # ready, and the submit/submit_many code paths (bytecode
            # specialisation, lazily built structures) already exercised —
            # otherwise the first timed submit_many burst pays cold-path
            # costs inside the batched measurement.
            _measure_fanout(pool, 64)
            _measure_batched(pool, 64)
            fanout_best = min(fanout_best, _measure_fanout(pool, tasks))
            batched_best = min(batched_best, _measure_batched(pool, tasks))
        finally:
            pool.shutdown()
    return {
        "pool.fanout_throughput_tasks_per_s": round(tasks / fanout_best, 1),
        "pool.fanout_per_task_seconds": round(fanout_best / tasks, 9),
        "pool.batched_throughput_tasks_per_s": round(tasks / batched_best, 1),
        "pool.batched_per_task_seconds": round(batched_best / tasks, 9),
        # "cores" carries no direction token ("workers" would match "work")
        "pool.cores": float(workers),
        "pool.tasks": float(tasks),
    }


def snapshot_pool_bench(
    path: Path | str = POOL_BENCH_PATH, **kwargs: object
) -> Path:
    """Measure and persist the trajectory snapshot (the per-PR ritual)."""
    from repro.obs.baseline import update_baseline

    return update_baseline("pool_micro", pool_micro_metrics(**kwargs), path)  # type: ignore[arg-type]


@register(
    "pool_micro",
    "Work-stealing pool task-plumbing microbench (wall clock)",
    "ROADMAP item 4 (perf trajectory)",
    perf=True,
)
def run_pool_micro() -> ExperimentResult:
    metrics = pool_micro_metrics()
    table = Table(
        ["metric", "value"],
        title=f"pool microbench ({int(metrics['pool.cores'])} workers, "
        f"{int(metrics['pool.tasks'])} tasks, best of {REPEATS})",
        precision=9,
    )
    for name in sorted(metrics):
        table.add_row([name, metrics[name]])
    notes = (
        "Wall-clock numbers: machine-dependent by design — this is the "
        "trajectory anchor ROADMAP item 4 asks for, not a golden report. "
        "Gate against the committed snapshot with obs.baseline "
        "(direction-aware: throughput up, seconds down) and refresh it "
        "via repro.bench.experiments_pool.snapshot_pool_bench() when a "
        "PR intentionally moves the hot path."
    )
    return ExperimentResult(exp_id="pool_micro", tables=(table,), notes=notes, metrics=metrics)
