"""Benchmark harness: the per-experiment registry and report format.

Every figure, table-like enumeration and reported statistic in the paper
has an experiment here (see DESIGN.md §4).  Each experiment's ``run``
produces :class:`repro.util.tables.Table` objects shaped like the
paper's artefact; the ``benchmarks/`` pytest-benchmark targets call
these and print the tables, so ``pytest benchmarks/ --benchmark-only``
regenerates the whole evaluation.
"""

from repro.bench.harness import Experiment, ExperimentResult, all_experiments, get_experiment, register

# Importing the experiment modules registers every experiment.
from repro.bench import ablations as _ablations  # noqa: F401,E402
from repro.bench import experiments_course as _course  # noqa: F401,E402
from repro.bench import experiments_hotpath as _hotpath  # noqa: F401,E402
from repro.bench import experiments_projects as _projects  # noqa: F401,E402
from repro.bench import experiments_pool as _pool  # noqa: F401,E402
from repro.bench import experiments_projects2 as _projects2  # noqa: F401,E402
from repro.bench import experiments_real as _real  # noqa: F401,E402
from repro.bench import experiments_serve as _serve  # noqa: F401,E402

__all__ = ["Experiment", "ExperimentResult", "register", "get_experiment", "all_experiments"]
