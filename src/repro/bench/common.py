"""Shared bench configuration.

All project experiments schedule onto PARC64 scaled to the sweep's core
count, with the dispatch overhead set to 1 µs — a lightweight tasking
runtime (the Java tools batch dispatch; 100 µs would model a heavyweight
pool and drown the smaller kernels in overhead, which is itself shown
explicitly by the granularity sweeps that *vary* the overhead).
"""

from __future__ import annotations

from dataclasses import replace

from repro.machine import MachineSpec, PARC64

__all__ = ["bench_machine", "CORE_SWEEP"]

CORE_SWEEP = (1, 2, 4, 8, 16, 32, 64)


def bench_machine(cores: int, dispatch_overhead: float = 1e-6) -> MachineSpec:
    """PARC64 scaled to ``cores``, with the bench-standard dispatch cost."""
    return replace(PARC64.with_cores(cores), dispatch_overhead=dispatch_overhead)
