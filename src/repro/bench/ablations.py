"""Ablation experiments for the design choices DESIGN.md calls out.

Not artefacts of the paper itself, but the knobs the course teaches and
this implementation exposes: loop-schedule choice under skew, the list
scheduler's core-selection policy, and measured-vs-Amdahl overlays.
"""

from __future__ import annotations

from repro.bench.common import bench_machine
from repro.bench.harness import ExperimentResult, register
from repro.executor import create
from repro.pyjama import Pyjama
from repro.util.stats import amdahl_speedup, gustafson_speedup, karp_flatt, speedup
from repro.util.tables import Table

__all__ = ["run_ablation_schedules", "run_ablation_policy", "run_ablation_amdahl"]


def _machine(cores: int):
    return bench_machine(cores)


@register("abl_sched", "loop schedules under skew", "ablation (course weeks 1-5 material)")
def run_ablation_schedules() -> ExperimentResult:
    """static/dynamic/guided across skew levels — why schedules exist."""
    n = 64
    table = Table(
        ["iteration cost profile", "static", "static,chunk=1", "dynamic", "guided", "best"],
        title="schedule ablation: parallel_for makespan (virtual s), 8 threads/cores",
        precision=4,
    )
    profiles = {
        "uniform": [1e-3] * n,
        "triangular (cost ~ i)": [1e-4 * (i + 1) for i in range(n)],
        "one giant iteration": [1e-4] * (n - 1) + [3e-2],
        "front-loaded": [3e-3] * (n // 4) + [2e-4] * (n - n // 4),
    }
    for label, costs in profiles.items():
        times = {}
        for sched, chunk in (
            ("static", None),
            ("static,chunk=1", 1),
            ("dynamic", 1),
            ("guided", None),
        ):
            base = sched.split(",")[0]
            omp = Pyjama(create("sim", machine=_machine(8)), num_threads=8)
            omp.parallel_for(
                list(range(n)),
                lambda i: i,
                schedule=base,
                chunk_size=chunk,
                cost_fn=lambda i: costs[i],
            )
            times[sched] = omp.executor.elapsed()
        best = min(times, key=times.get)  # type: ignore[arg-type]
        table.add_row([label, times["static"], times["static,chunk=1"], times["dynamic"], times["guided"], best])
    return ExperimentResult(
        exp_id="abl_sched",
        tables=(table,),
        notes="expected shape: static wins uniform loops (no scheduling cost to model); "
        "dynamic/guided win skewed loops; nobody beats dynamic with unit chunks on the "
        "one-giant-iteration profile",
    )


@register("abl_policy", "list-scheduler core-selection policy", "ablation (DESIGN.md)")
def run_ablation_policy() -> ExperimentResult:
    """earliest-free core vs dependency-affinity core selection.

    Run twice: with communication priced at zero (policies tie — greedy
    is robust) and with a cross-core transfer penalty (affinity keeps
    chains on one core and wins).
    """
    from dataclasses import replace

    table = Table(
        ["workload", "cross-core penalty", "earliest policy (s)", "affinity policy (s)"],
        title="virtual scheduler policy ablation on 8 cores",
        precision=4,
    )

    def fork_join_chains(ex):
        # 16 chains (2x the cores) of 6 dependent tasks with per-chain
        # costs: oversubscription + asymmetry make earliest-free scatter
        # chains across cores, while affinity keeps each chain put.
        from repro.ptask import ParallelTaskRuntime

        rt = ParallelTaskRuntime(ex)
        tails = []
        for c in range(16):
            prev = None
            cost = (1 + c % 3) * 1e-3
            for _i in range(6):
                prev = rt.spawn(lambda: None, cost=cost, depends_on=[prev] if prev else [])
            tails.append(prev)
        for t in tails:
            t.result()

    def independent_soup(ex):
        for _ in range(64):
            ex.submit(lambda: None, cost=1e-3)

    for label, workload in (
        ("16 dependent chains", fork_join_chains),
        ("64 independent tasks", independent_soup),
    ):
        for penalty in (0.0, 2e-3):
            row: list[object] = [label, penalty]
            for policy in ("earliest", "affinity"):
                machine = replace(_machine(8), cross_core_penalty=penalty)
                ex = create("sim", machine=machine, policy=policy)
                workload(ex)
                row.append(ex.schedule().makespan)
            table.add_row(row)
    return ExperimentResult(
        exp_id="abl_policy",
        tables=(table,),
        notes="expected shape: with communication priced at zero the policies tie "
        "(greedy is robust); with a cross-core transfer cost, affinity wins the "
        "dependent-chain workload by keeping each chain's cache warm, and still "
        "ties on independent tasks (no dependencies to exploit)",
    )


@register("abl_amdahl", "measured speedup vs analytic models", "ablation (course material)")
def run_ablation_amdahl() -> ExperimentResult:
    """Quicksort's measured curve against Amdahl/Gustafson overlays."""
    from repro.apps.sorting import quicksort, random_array

    data = random_array(8000, seed=42)
    times = {}
    for cores in (1, 2, 4, 8, 16, 32, 64):
        ex = create("sim", machine=_machine(cores))
        quicksort(ex, data, variant="ptask", cutoff=128)
        times[cores] = ex.elapsed()

    f = karp_flatt(speedup(times[1], times[8]), 8)  # experimentally determined serial fraction
    table = Table(
        ["cores", "measured speedup", f"Amdahl (f={f:.3f})", f"Gustafson (f={f:.3f})", "Karp-Flatt f"],
        title="quicksort speedup vs analytic models (virtual time)",
        precision=3,
    )
    for cores, t in times.items():
        s = speedup(times[1], t)
        table.add_row(
            [
                cores,
                s,
                amdahl_speedup(f, cores),
                gustafson_speedup(f, cores),
                karp_flatt(s, cores) if cores > 1 else float("nan"),
            ]
        )
    return ExperimentResult(
        exp_id="abl_amdahl",
        tables=(table,),
        notes="expected shape: measured tracks Amdahl closely (fixed problem size) and "
        "sits far below Gustafson; Karp-Flatt f stays roughly constant, confirming a "
        "genuine serial fraction rather than overhead growth",
    )
