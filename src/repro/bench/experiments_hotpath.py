"""Sim-kernel and trace-recorder microbenches: the other two hot loops.

ROADMAP item 4's measure-then-optimize ritual needs a committed
wall-clock anchor for each loop the flamegraphs say is hot.  The pool
plumbing has :mod:`repro.bench.experiments_pool`; this module adds the
remaining two —

* **sim_micro** — a large ablation-shaped simulation (thousands of
  generator processes sleeping, waiting on events and joining each
  other) driven through ``Simulator.run()``; the metric is *steps per
  wall second*, i.e. how fast the event loop turns the heap over;
* **trace_micro** — the :class:`~repro.obs.trace.TraceRecorder` emit
  path under the common configuration (single ``MemorySink``, no event
  cap): instants, span edges and counter increments per wall second.

Both follow the ``pool_micro`` conventions: best-of-``REPEATS`` minimum
wall time, direction-tokened metric names (``throughput`` up is good,
``seconds`` down is good, bare counts are info-only), and a
``snapshot_*`` helper that persists to ``benchmarks/reports/`` in the
:mod:`repro.obs.baseline` store format so ``python -m repro compare``
gates the trajectory.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Generator

from repro.bench.harness import ExperimentResult, register
from repro.obs.trace import TraceRecorder
from repro.simkernel.core import Simulator
from repro.util.tables import Table

__all__ = [
    "run_sim_micro",
    "sim_micro_metrics",
    "snapshot_sim_bench",
    "run_trace_micro",
    "trace_micro_metrics",
    "snapshot_trace_bench",
]

#: committed trajectory snapshots (same store format as BENCH_pool.json)
SIM_BENCH_PATH = Path("benchmarks/reports/BENCH_sim.json")
TRACE_BENCH_PATH = Path("benchmarks/reports/BENCH_trace.json")

#: best-of-N runs; the minimum is the least-disturbed measurement
REPEATS = 3

#: sim_micro shape: PROCS workers × PHASES sleep/event/join rounds
PROCS = 2_000
PHASES = 25

#: trace_micro volume: instants+spans+counts per measured run
TRACE_EVENTS = 120_000


# -- sim_micro ---------------------------------------------------------------


def _sim_workload(procs: int, phases: int) -> Simulator:
    """Build (without running) an ablation-shaped simulation.

    Each process alternates sleeps with waits on a shared per-phase
    barrier event fired by a coordinator, and half the processes join a
    partner at the end — so the measured loop exercises every scheduling
    primitive the real ablations use (timed wakeups, event fan-out,
    process joins), not just a sleep ladder.
    """
    sim = Simulator()
    gates = [sim.event(name=f"gate{p}") for p in range(phases)]

    def coordinator() -> Generator[Any, Any, None]:
        for gate in gates:
            yield 1.0
            gate.fire()

    def worker(i: int) -> Generator[Any, Any, int]:
        for p in range(phases):
            yield 0.25 + (i % 7) * 0.01
            yield gates[p]
        return i

    workers = [sim.spawn(worker(i), name=f"w{i}") for i in range(procs)]

    def joiner(partner_index: int) -> Generator[Any, Any, None]:
        yield workers[partner_index]

    for i in range(0, procs, 2):
        sim.spawn(joiner(i), name=f"j{i}")
    sim.spawn(coordinator(), name="coord")
    return sim


def sim_micro_metrics(
    procs: int = PROCS, phases: int = PHASES, repeats: int = REPEATS
) -> dict[str, float]:
    """Run the sim-kernel microbench; returns direction-aware metrics."""
    best = float("inf")
    steps = 0
    for _ in range(repeats):
        sim = _sim_workload(procs, phases)
        t0 = time.perf_counter()
        sim.run()
        best = min(best, time.perf_counter() - t0)
        steps = sim.steps  # identical across repeats: the sim is seeded
    return {
        "sim.steps_throughput_steps_per_s": round(steps / best, 1),
        "sim.per_step_seconds": round(best / steps, 9),
        # info-only workload descriptors (no direction token)
        "sim.steps": float(steps),
        "sim.procs": float(procs),
    }


def snapshot_sim_bench(path: Path | str = SIM_BENCH_PATH, **kwargs: object) -> Path:
    """Measure and persist the sim-kernel trajectory snapshot."""
    from repro.obs.baseline import update_baseline

    return update_baseline("sim_micro", sim_micro_metrics(**kwargs), path)  # type: ignore[arg-type]


@register(
    "sim_micro",
    "Sim-kernel event-loop microbench (wall clock)",
    "ROADMAP item 4 (perf trajectory)",
    perf=True,
)
def run_sim_micro() -> ExperimentResult:
    metrics = sim_micro_metrics()
    table = Table(
        ["metric", "value"],
        title=f"sim-kernel microbench ({int(metrics['sim.procs'])} procs, "
        f"{int(metrics['sim.steps'])} steps, best of {REPEATS})",
        precision=9,
    )
    for name in sorted(metrics):
        table.add_row([name, metrics[name]])
    notes = (
        "Wall-clock trajectory anchor for the Simulator.run() hot loop "
        "(heap pop, dead-process skip, clock advance, generator resume). "
        "Gate with 'python -m repro compare sim_micro --baseline "
        "benchmarks/reports/BENCH_sim.json'; refresh via snapshot_sim_bench() "
        "when a PR intentionally moves the loop."
    )
    return ExperimentResult(exp_id="sim_micro", tables=(table,), notes=notes, metrics=metrics)


# -- trace_micro -------------------------------------------------------------


def _emit_burst(recorder: TraceRecorder, events: int) -> None:
    """Emit ``events`` records shaped like the pool's instrumentation:
    two span edges + one instant + one counter bump per 4-event round."""
    event = recorder.event
    count = recorder.count
    rounds = events // 4
    for i in range(rounds):
        event("task", "micro", phase="B", task_id=i, worker=i & 3)
        event("steal", "micro", task_id=i, worker=i & 3)
        event("task", "micro", phase="E", task_id=i, worker=i & 3)
        count("bench.emitted")


def trace_micro_metrics(
    events: int = TRACE_EVENTS, repeats: int = REPEATS
) -> dict[str, float]:
    """Run the recorder-emit microbench; returns direction-aware metrics."""
    emitted = (events // 4) * 4  # whole rounds only
    best = float("inf")
    for _ in range(repeats):
        recorder = TraceRecorder()
        t0 = time.perf_counter()
        _emit_burst(recorder, events)
        best = min(best, time.perf_counter() - t0)
    return {
        "trace.emit_throughput_events_per_s": round(emitted / best, 1),
        "trace.per_event_seconds": round(best / emitted, 9),
        "trace.events": float(emitted),  # info-only
    }


def snapshot_trace_bench(path: Path | str = TRACE_BENCH_PATH, **kwargs: object) -> Path:
    """Measure and persist the recorder-emit trajectory snapshot."""
    from repro.obs.baseline import update_baseline

    return update_baseline("trace_micro", trace_micro_metrics(**kwargs), path)  # type: ignore[arg-type]


@register(
    "trace_micro",
    "TraceRecorder emit-path microbench (wall clock)",
    "ROADMAP item 4 (perf trajectory)",
    perf=True,
)
def run_trace_micro() -> ExperimentResult:
    metrics = trace_micro_metrics()
    table = Table(
        ["metric", "value"],
        title=f"trace-emit microbench ({int(metrics['trace.events'])} events, "
        f"best of {REPEATS})",
        precision=9,
    )
    for name in sorted(metrics):
        table.add_row([name, metrics[name]])
    notes = (
        "Wall-clock trajectory anchor for the TraceRecorder emit path "
        "(event construction + sink append + metric bump; memory sink, no "
        "cap).  Gate with 'python -m repro compare trace_micro --baseline "
        "benchmarks/reports/BENCH_trace.json'; refresh via "
        "snapshot_trace_bench() when a PR intentionally moves the path."
    )
    return ExperimentResult(exp_id="trace_micro", tables=(table,), notes=notes, metrics=metrics)
