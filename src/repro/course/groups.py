"""Group formation.

Paper §III-D: groups of 3, and "before releasing the doodle poll, it was
ensured that all students were allocated to a group", so nobody is
disadvantaged when the poll opens.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.course.students import Student
from repro.util.rng import derive

__all__ = ["Group", "form_groups"]


@dataclass(frozen=True)
class Group:
    group_id: str
    members: tuple[Student, ...]

    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def mean_ability(self) -> float:
        return sum(m.ability for m in self.members) / len(self.members)

    def __str__(self) -> str:
        return f"{self.group_id}: " + ", ".join(m.name for m in self.members)


def form_groups(students: list[Student], group_size: int = 3, seed: int = 0) -> list[Group]:
    """Partition the cohort into groups of ``group_size``.

    Students self-select in practice; we model that with a seeded shuffle
    (friends cluster randomly w.r.t. ability).  Every student lands in a
    group — the §III-D precondition for the poll.  When the cohort does
    not divide evenly, the last groups absorb the remainder one extra
    member each (a size-4 group beats a stranded pair).
    """
    if group_size < 1:
        raise ValueError(f"group_size must be >= 1, got {group_size}")
    if not students:
        return []
    rng = derive(seed, "group-formation")
    order = list(students)
    rng.shuffle(order)
    n_groups = max(1, len(order) // group_size)
    groups: list[list[Student]] = [[] for _ in range(n_groups)]
    for i, student in enumerate(order):
        groups[i % n_groups].append(student)
    return [
        Group(group_id=f"g{idx:02d}", members=tuple(members))
        for idx, members in enumerate(groups)
    ]
