"""Instructor reports: the semester's paperwork, generated.

The paper's instructors administered the course through the subversion
histories and the assessment scheme; this module renders what they would
actually file: a per-group report (contribution, hygiene, marks) and a
whole-course summary.  Everything is plain text built from
:class:`repro.util.tables.Table`, so reports diff cleanly between runs.
"""

from __future__ import annotations

from repro.course.semester import SemesterResult
from repro.course.topics import TOPICS
from repro.util.stats import summarize
from repro.util.tables import Table
from repro.vcs.blame import blame_summary
from repro.vcs.stats import contribution_shares

__all__ = ["group_report", "course_report"]


def group_report(result: SemesterResult, group_id: str) -> str:
    """One group's end-of-semester record."""
    group = next((g for g in result.groups if g.group_id == group_id), None)
    if group is None:
        raise KeyError(f"unknown group {group_id!r}")
    topic_number = result.allocation.assignments.get(group_id)
    topic = next((t for t in TOPICS if t.number == topic_number), None)
    repo = result.repos.get(group_id)

    lines = [f"== group {group_id} =="]
    if topic is not None:
        lines.append(f"topic: {topic.number}. {topic.title}")
    lines.append("members: " + ", ".join(f"{m.name} ({m.student_id})" for m in group.members))

    if repo is not None:
        shares = contribution_shares(repo)
        # surviving lines per member (svn blame over the final tree) — the
        # stronger signal than churn: rewritten work doesn't survive
        surviving: dict[str, int] = {}
        for path in repo.checkout():
            for author, count in blame_summary(repo, path).items():
                surviving[author] = surviving.get(author, 0) + count
        lines.append(f"repository: {repo.head} revisions; {result.hygiene[group_id]}")
        contrib = Table(
            ["member", "svn churn share", "surviving lines (blame)", "final grade"], precision=2
        )
        for member in group.members:
            contrib.add_row(
                [
                    member.student_id,
                    shares.get(member.student_id, 0.0),
                    surviving.get(member.student_id, 0),
                    result.final_grade(member.student_id),
                ]
            )
        lines.append(contrib.render())
    return "\n".join(lines)


def course_report(result: SemesterResult) -> str:
    """The whole offering on one page."""
    lines = [f"== SoftEng 751 semester report (seed {result.config.seed}) =="]

    overview = Table(["measure", "value"])
    grades = result.grade_distribution()
    stats = summarize(grades)
    overview.add_row(["students enrolled", len(result.students)])
    overview.add_row(["groups", len(result.groups)])
    overview.add_row(["topics offered", len(TOPICS)])
    overview.add_row(["groups allocated", len(result.allocation.assignments)])
    overview.add_row(["repositories clean (PARC hygiene)", sum(1 for h in result.hygiene.values() if h.clean)])
    overview.add_row(["grade mean", round(stats.mean, 1)])
    overview.add_row(["grade median", round(stats.median, 1)])
    overview.add_row(["grade p95", round(stats.p95, 1)])
    overview.add_row(["masters continuing with PARC", len(result.masters_continuing())])
    lines.append(overview.render())

    topics = Table(["topic", "groups", "commits"], title="per-topic activity")
    for topic in TOPICS:
        gids = result.allocation.groups_on_topic(topic.number)
        commits = sum(result.repos[g].head for g in gids if g in result.repos)
        topics.add_row([f"{topic.number}. {topic.title[:40]}", ", ".join(gids), commits])
    lines.append(topics.render())

    survey = Table(["question", "agreement %"], title="student evaluation (Likert)")
    for s in result.survey:
        survey.add_row([s.question, s.agreement_percent])
    lines.append(survey.render())

    return "\n\n".join(lines)
