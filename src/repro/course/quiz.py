"""Test 1, generated: core parallel-programming concepts (weeks 1-5).

Section III-C's Test 1 "assess[es] students on their understanding of
the core parallel programming concepts taught in weeks 1-5".  This
module generates that instrument: parameterised questions whose model
answers are **computed by the library** (Amdahl's law from
:mod:`repro.util.stats`, work/span from a generated DAG, chunk sizes
from :mod:`repro.pyjama.schedule`, litmus outcomes from
:mod:`repro.memmodel`), so the quiz can never disagree with the material
it examines.  A seeded student-answer model turns ability into marks,
which is how the semester simulation produces its Test 1 column.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.graph import SegmentGraph
from repro.pyjama.schedule import make_chunks
from repro.util.rng import derive
from repro.util.stats import amdahl_speedup, efficiency, speedup

__all__ = ["QuizQuestion", "Quiz", "generate_quiz", "simulate_student_answers", "grade"]


@dataclass(frozen=True)
class QuizQuestion:
    """One numeric question with its computed model answer."""

    topic: str
    prompt: str
    answer: float
    tolerance: float = 1e-2  # relative

    def is_correct(self, given: float) -> bool:
        """Within relative tolerance (absolute near zero)."""
        scale = max(1.0, abs(self.answer))
        return abs(given - self.answer) <= self.tolerance * scale


@dataclass(frozen=True)
class Quiz:
    """A generated Test 1 paper."""

    seed: int
    questions: tuple[QuizQuestion, ...]

    def __len__(self) -> int:
        return len(self.questions)

    def topics(self) -> set[str]:
        """The distinct syllabus topics this paper covers."""
        return {q.topic for q in self.questions}


def _q_amdahl(rng: np.random.Generator) -> QuizQuestion:
    f = round(float(rng.uniform(0.02, 0.4)), 2)
    p = int(rng.choice([2, 4, 8, 16, 64]))
    return QuizQuestion(
        topic="amdahl",
        prompt=(
            f"A program has serial fraction {f}. What speedup does Amdahl's "
            f"law predict on {p} cores? (2 dp)"
        ),
        answer=amdahl_speedup(f, p),
    )


def _q_speedup_efficiency(rng: np.random.Generator) -> QuizQuestion:
    t1 = round(float(rng.uniform(10, 100)), 1)
    p = int(rng.choice([4, 8, 16]))
    s = float(rng.uniform(1.5, p * 0.9))
    tp = round(t1 / s, 2)
    if rng.random() < 0.5:
        return QuizQuestion(
            topic="speedup",
            prompt=f"T1 = {t1}s and T{p} = {tp}s. What is the speedup?",
            answer=speedup(t1, tp),
        )
    return QuizQuestion(
        topic="efficiency",
        prompt=f"T1 = {t1}s and T{p} = {tp}s on {p} cores. What is the efficiency?",
        answer=efficiency(t1, tp, p),
    )


def _q_work_span(rng: np.random.Generator) -> QuizQuestion:
    """A small random series-parallel DAG; ask for work, span or bound."""
    graph = SegmentGraph()
    n_chains = int(rng.integers(2, 5))
    for _ in range(n_chains):
        prev = None
        for _ in range(int(rng.integers(1, 4))):
            cost = float(rng.integers(1, 9))
            seg = graph.add(0, "s", cost, deps=[prev.sid] if prev else [])
            prev = seg
    work = graph.total_work()
    span = graph.critical_path()
    chains = f"{n_chains} parallel chains"
    kind = rng.choice(["work", "span", "parallelism"])
    if kind == "work":
        return QuizQuestion(
            topic="work-span",
            prompt=f"A task DAG ({chains}) has these segment costs; total work T1 = ?",
            answer=work,
        )
    if kind == "span":
        return QuizQuestion(
            topic="work-span",
            prompt=f"Same DAG ({chains}): the span T-infinity = ?",
            answer=span,
        )
    return QuizQuestion(
        topic="work-span",
        prompt=f"Same DAG ({chains}): the average parallelism T1/T-inf = ? (2 dp)",
        answer=work / span,
    )


def _q_schedule_chunk(rng: np.random.Generator) -> QuizQuestion:
    n = int(rng.integers(20, 200))
    threads = int(rng.choice([2, 4, 8]))
    schedule = str(rng.choice(["static", "guided"]))
    chunks = make_chunks(n, schedule, None, threads)
    k = int(rng.integers(0, min(3, len(chunks))))
    return QuizQuestion(
        topic="schedules",
        prompt=(
            f"A {schedule}-scheduled loop of {n} iterations on {threads} threads: "
            f"how many iterations are in chunk {k}?"
        ),
        answer=float(len(chunks[k])),
        tolerance=0.0,
    )


def _q_litmus(rng: np.random.Generator) -> QuizQuestion:
    from repro.memmodel import SNIPPETS, explore

    name, check = [
        ("lost_update", lambda r: 1 in r.shared_values("x")),
        ("store_buffering", lambda r: any(
            not o.deadlocked and o.reg(0, "r0") == 0 and o.reg(1, "r1") == 0 for o in r.outcomes
        )),
        ("message_passing", lambda r: any(
            not o.deadlocked and o.reg(1, "rf") == 1 and o.reg(1, "rd") == 0 for o in r.outcomes
        )),
    ][int(rng.integers(0, 3))]
    model = str(rng.choice(["sc", "tso", "relaxed"]))
    possible = check(explore(SNIPPETS[name].program, model))
    return QuizQuestion(
        topic="memory-model",
        prompt=f"Under the {model} model, can {name.replace('_', ' ')}'s bad outcome occur? (1=yes, 0=no)",
        answer=1.0 if possible else 0.0,
        tolerance=0.0,
    )


_GENERATORS = (_q_amdahl, _q_speedup_efficiency, _q_work_span, _q_schedule_chunk, _q_litmus)


def generate_quiz(seed: int = 0, n_questions: int = 10) -> Quiz:
    """A deterministic Test 1 paper covering every syllabus topic."""
    if n_questions < len(_GENERATORS):
        raise ValueError(
            f"need at least {len(_GENERATORS)} questions to cover every topic, got {n_questions}"
        )
    rng = derive(seed, "quiz")
    questions: list[QuizQuestion] = []
    for i in range(n_questions):
        gen = _GENERATORS[i % len(_GENERATORS)]
        questions.append(gen(rng))
    return Quiz(seed=seed, questions=tuple(questions))


def simulate_student_answers(quiz: Quiz, ability: float, seed: int = 0) -> list[float]:
    """What a student of given ability writes down.

    Per question: correct with probability rising in ability; otherwise a
    plausibly-wrong value (sign slips, off-by-one chunk, the p-for-speedup
    confusion are all just multiplicative/additive noise here).
    """
    if not 0.0 <= ability <= 1.0:
        raise ValueError(f"ability must be in [0,1], got {ability}")
    rng = derive(seed, "quiz-answers", quiz.seed)
    answers = []
    for q in quiz.questions:
        p_correct = 0.25 + 0.7 * ability
        if rng.random() < p_correct:
            answers.append(q.answer)
        elif q.tolerance == 0.0:  # discrete question: pick a wrong integer
            answers.append(q.answer + float(rng.choice([-2, -1, 1, 2])))
        else:
            answers.append(q.answer * float(rng.uniform(0.3, 1.9)) + float(rng.normal(0, 0.5)))
    return answers


def grade(quiz: Quiz, answers: list[float]) -> float:
    """Mark out of 100 (equal weight per question)."""
    if len(answers) != len(quiz.questions):
        raise ValueError(f"expected {len(quiz.questions)} answers, got {len(answers)}")
    correct = sum(1 for q, a in zip(quiz.questions, answers) if q.is_correct(a))
    return 100.0 * correct / len(quiz.questions)
