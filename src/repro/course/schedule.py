"""Figure 2: the SoftEng 751 course structure.

The University of Auckland semester shape: 6 teaching weeks, a 2-week
study break, then another 6 teaching weeks.  Each week is tagged with
how it was used, in the figure's own legend:

* ``IT`` — instructor-led teaching,
* ``A``  — assessment,
* ``ST`` — student-led teaching (group presentations),
* ``P``  — "free time" for project work.

``build_semester`` constructs the paper's exact structure; the builder
is parameterised so an adopting instructor can reshape it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["WeekUse", "Week", "build_semester", "SOFTENG751_SCHEDULE", "schedule_rows"]


class WeekUse(enum.Enum):
    """How a semester week is used (the Figure 2 legend)."""

    INSTRUCTOR_TEACHING = "IT"
    ASSESSMENT = "A"
    PROJECT = "P"
    STUDENT_TEACHING = "ST"
    BREAK = "-"


@dataclass(frozen=True)
class Week:
    number: int  # teaching week number; 0 for break weeks
    label: str
    uses: tuple[WeekUse, ...]
    notes: str = ""

    @property
    def codes(self) -> str:
        return "+".join(u.value for u in self.uses)


def build_semester(
    teaching_weeks_before_break: int = 6,
    break_weeks: int = 2,
    teaching_weeks_after_break: int = 6,
) -> list[Week]:
    """The paper's semester (Figure 2) with the standard UoA shape.

    Weeks 1-5: instructor-led teaching of the core concepts; week 6:
    test 1 plus discussion of project topics; weeks 7-10: student
    presentations alongside project time; week 11: test 2 plus project;
    week 12: project, with implementation and report due.
    """
    if min(teaching_weeks_before_break, break_weeks, teaching_weeks_after_break) < 0:
        raise ValueError("week counts must be >= 0")
    total_teaching = teaching_weeks_before_break + teaching_weeks_after_break
    weeks: list[Week] = []
    n = 0
    for _ in range(teaching_weeks_before_break):
        n += 1
        if n < teaching_weeks_before_break:
            weeks.append(Week(n, f"week {n}", (WeekUse.INSTRUCTOR_TEACHING,), "core parallel programming concepts"))
        else:
            weeks.append(
                Week(
                    n,
                    f"week {n}",
                    (WeekUse.ASSESSMENT,),
                    "test 1 on weeks 1-5; project topics discussed",
                )
            )
    for b in range(break_weeks):
        weeks.append(Week(0, f"study break {b + 1}", (WeekUse.BREAK,), "mid-semester break"))
    for _ in range(teaching_weeks_after_break):
        n += 1
        if n <= total_teaching - 2:
            weeks.append(
                Week(
                    n,
                    f"week {n}",
                    (WeekUse.STUDENT_TEACHING, WeekUse.PROJECT),
                    "group seminars (2 x 20+5 min per slot); project work",
                )
            )
        elif n == total_teaching - 1:
            weeks.append(
                Week(n, f"week {n}", (WeekUse.ASSESSMENT, WeekUse.PROJECT), "test 2 on the presentations")
            )
        else:
            weeks.append(
                Week(
                    n,
                    f"week {n}",
                    (WeekUse.PROJECT,),
                    "implementation and report due (submitted via subversion)",
                )
            )
    return weeks


#: the course structure as run (Figure 2)
SOFTENG751_SCHEDULE: list[Week] = build_semester()


def schedule_rows(weeks: list[Week] | None = None) -> list[tuple[str, str, str]]:
    """(label, codes, notes) rows — the Figure 2 table body."""
    return [(w.label, w.codes, w.notes) for w in (weeks if weeks is not None else SOFTENG751_SCHEDULE)]
