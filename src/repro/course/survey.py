"""The end-of-course Likert evaluation (paper §V-A).

The instrument: statements rated on the five-point Likert scale, plus
open comments.  The paper reports, for a cohort of ~60:

* 95% agreed/strongly agreed "The objectives of the lectures were
  clearly explained";
* 95% agreed/strongly agreed "The lecturer stimulated my engagement in
  the learning process";
* 92% agreed/strongly agreed "The class discussions were effective in
  helping me learn".

:func:`run_survey` generates a response set whose *agreement percentage
rounds to the paper's figure* for each question: target proportions are
converted to integer counts by largest-remainder apportionment, then
shuffled into individual responses by seed.  The summary statistics are
recomputed from the individual responses — so the bench's numbers are
measured, not copied.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.util.rng import derive

__all__ = [
    "Likert",
    "LikertQuestion",
    "LikertSummary",
    "PAPER_QUESTIONS",
    "run_survey",
    "OpenComment",
    "PAPER_COMMENTS",
    "sample_open_comments",
    "theme_counts",
]


class Likert(enum.IntEnum):
    """The five-point scale, strongly-disagree (1) to strongly-agree (5)."""

    STRONGLY_DISAGREE = 1
    DISAGREE = 2
    NEUTRAL = 3
    AGREE = 4
    STRONGLY_AGREE = 5


@dataclass(frozen=True)
class LikertQuestion:
    """A statement plus its target response distribution (proportions
    over the five options, strongly-disagree first; sums to 1)."""

    text: str
    target_distribution: tuple[float, float, float, float, float]

    def __post_init__(self) -> None:
        if abs(sum(self.target_distribution) - 1.0) > 1e-9:
            raise ValueError("target distribution must sum to 1")
        if any(p < 0 for p in self.target_distribution):
            raise ValueError("proportions must be >= 0")

    @property
    def target_agreement(self) -> float:
        return self.target_distribution[3] + self.target_distribution[4]


#: §V-A's three reported questions, with distributions placing the
#: agree+strongly-agree mass at the reported figure.
PAPER_QUESTIONS: tuple[LikertQuestion, ...] = (
    LikertQuestion(
        "The objectives of the lectures were clearly explained",
        (0.00, 0.02, 0.03, 0.40, 0.55),
    ),
    LikertQuestion(
        "The lecturer stimulated my engagement in the learning process",
        (0.00, 0.02, 0.03, 0.35, 0.60),
    ),
    LikertQuestion(
        "The class discussions were effective in helping me learn",
        (0.01, 0.02, 0.05, 0.42, 0.50),
    ),
)


@dataclass(frozen=True)
class LikertSummary:
    """Measured distribution of one question's responses."""

    question: str
    counts: tuple[int, int, int, int, int]

    @property
    def n(self) -> int:
        return sum(self.counts)

    def proportion(self, level: Likert) -> float:
        if self.n == 0:
            return 0.0
        return self.counts[int(level) - 1] / self.n

    @property
    def agreement(self) -> float:
        """Fraction answering agree or strongly agree."""
        if self.n == 0:
            return 0.0
        return (self.counts[3] + self.counts[4]) / self.n

    @property
    def agreement_percent(self) -> int:
        return round(self.agreement * 100)

    @property
    def mean_score(self) -> float:
        if self.n == 0:
            return 0.0
        return sum((i + 1) * c for i, c in enumerate(self.counts)) / self.n

    def __str__(self) -> str:
        return f"{self.question!r}: {self.agreement_percent}% agreement (n={self.n})"


@dataclass(frozen=True)
class OpenComment:
    """One free-text answer, tagged with its theme.

    ``verbatim`` marks the comments quoted in the paper itself (§V-A);
    the rest are theme-consistent synthetic filler so a full cohort's
    comment sheet can be generated.
    """

    theme: str
    text: str
    verbatim: bool = False


#: The paper's quoted student comments, theme-tagged (§V-A).
PAPER_COMMENTS: tuple[OpenComment, ...] = (
    OpenComment(
        "presentations",
        "The presentations were good practice and watching them was informative",
        verbatim=True,
    ),
    OpenComment("discussions", "Keep up the interaction with all of the groups", verbatim=True),
    OpenComment(
        "project", "The project that was part of the course was very helpful", verbatim=True
    ),
    OpenComment(
        "project",
        "This course was full of project work. It helped me to learn and explore the "
        "concepts in Java. It also helped me to develop my presentation skills.",
        verbatim=True,
    ),
    OpenComment(
        "more-research-time",
        "Individual meeting time can be extended so that more research oriented "
        "discussion can be done. I personally feel this course is very good to perform "
        "research hence more time should be devoted by the lecturer during individual "
        "meeting.",
        verbatim=True,
    ),
)

_SYNTHETIC_BY_THEME: dict[str, tuple[str, ...]] = {
    "presentations": (
        "Presenting our topic forced us to actually understand it",
        "Seeing the other groups' approaches was the best part of the course",
    ),
    "discussions": (
        "The class discussions after each seminar tied the topics together",
        "Questions after the talks were where I learned the most",
    ),
    "project": (
        "Working inside the research group made the project feel real",
        "Using the lab's tools on a real problem beat any assignment",
    ),
    "more-research-time": (
        "Would have liked more supervision hours for the research side",
        "More time with the postgrad mentor would have helped us go further",
    ),
    "tools": (
        "The research tools were occasionally rough, but reporting bugs felt useful",
        "Subversion discipline was annoying at first and invaluable by week 10",
    ),
}


def sample_open_comments(n: int, seed: int = 0) -> list[OpenComment]:
    """``n`` open comments: every paper quote plus synthetic filler.

    Raises ``ValueError`` if ``n`` is too small to carry all the
    verbatim quotes (the cohort the paper reports clearly wrote them).
    """
    if n < len(PAPER_COMMENTS):
        raise ValueError(f"need n >= {len(PAPER_COMMENTS)} to include the paper's quotes")
    rng = derive(seed, "open-comments")
    comments = list(PAPER_COMMENTS)
    themes = sorted(_SYNTHETIC_BY_THEME)
    while len(comments) < n:
        theme = themes[int(rng.integers(0, len(themes)))]
        options = _SYNTHETIC_BY_THEME[theme]
        comments.append(OpenComment(theme, options[int(rng.integers(0, len(options)))]))
    order = rng.permutation(len(comments))
    return [comments[i] for i in order]


def theme_counts(comments: list[OpenComment]) -> dict[str, int]:
    """Comment counts per theme (the instructor's qualitative rollup)."""
    out: dict[str, int] = {}
    for c in comments:
        out[c.theme] = out.get(c.theme, 0) + 1
    return out


def _apportion(distribution: tuple[float, ...], n: int) -> list[int]:
    """Largest-remainder integer apportionment of ``n`` responses."""
    quotas = [p * n for p in distribution]
    counts = [int(q) for q in quotas]
    shortfall = n - sum(counts)
    remainders = sorted(
        range(len(quotas)), key=lambda i: (quotas[i] - counts[i], i), reverse=True
    )
    for i in remainders[:shortfall]:
        counts[i] += 1
    return counts


def run_survey(
    questions: tuple[LikertQuestion, ...] = PAPER_QUESTIONS,
    n_respondents: int = 60,
    seed: int = 0,
) -> list[LikertSummary]:
    """Generate and summarise responses for each question.

    Individual responses exist (shuffled per seed) so downstream code
    can compute any statistic; the returned summaries recount them.
    """
    if n_respondents < 0:
        raise ValueError(f"n_respondents must be >= 0, got {n_respondents}")
    summaries = []
    for q_index, question in enumerate(questions):
        counts = _apportion(question.target_distribution, n_respondents)
        responses: list[Likert] = []
        for level_index, count in enumerate(counts):
            responses.extend([Likert(level_index + 1)] * count)
        rng = derive(seed, "survey", q_index)
        rng.shuffle(responses)  # individual response order is realistic
        measured = [0, 0, 0, 0, 0]
        for r in responses:
            measured[int(r) - 1] += 1
        summaries.append(
            LikertSummary(question=question.text, counts=tuple(measured))  # type: ignore[arg-type]
        )
    return summaries
