"""The cohort: students with seeded behavioural parameters.

The paper's cohort is "almost 60 students"; :func:`make_cohort` generates
one with per-student ability and productivity draws that the semester
simulation uses for test marks, commit activity and survey mood.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.rng import derive

__all__ = ["Student", "make_cohort"]


@dataclass(frozen=True)
class Student:
    """One enrolled student."""

    student_id: str
    name: str
    #: latent ability in [0, 1]: drives test and report marks
    ability: float
    #: commits-per-week propensity (>= 0)
    productivity: float
    #: Masters-taught students may continue with PARC next semester (§V-B)
    masters: bool

    def __str__(self) -> str:
        tag = " (MTaught)" if self.masters else ""
        return f"{self.student_id} {self.name}{tag}"


_FIRST = (
    "Aroha Ben Chen Divya Emma Filip Grace Hemi Isla Jack Kiri Liam Mei Nikau "
    "Olivia Priya Quinn Rata Sam Tane Uma Vikram Wiremu Xu Yasmin Zoe"
).split()
_LAST = (
    "Anderson Brown Clark Davies Evans Fraser Green Harris Ihaka Jones King "
    "Lee Mitchell Ngata Owen Patel Quirke Robinson Smith Taylor Walker Young"
).split()


def make_cohort(n: int = 60, seed: int = 0, masters_fraction: float = 0.25) -> list[Student]:
    """Generate ``n`` students deterministically from ``seed``."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if not 0.0 <= masters_fraction <= 1.0:
        raise ValueError(f"masters_fraction must be in [0,1], got {masters_fraction}")
    rng = derive(seed, "cohort")
    students = []
    for i in range(n):
        first = _FIRST[int(rng.integers(0, len(_FIRST)))]
        last = _LAST[int(rng.integers(0, len(_LAST)))]
        ability = float(rng.beta(5.0, 2.0))  # most students are competent
        productivity = float(rng.gamma(3.0, 1.5))
        students.append(
            Student(
                student_id=f"s{i:03d}",
                name=f"{first} {last}",
                ability=ability,
                productivity=productivity,
                masters=bool(rng.random() < masters_fraction),
            )
        )
    return students
