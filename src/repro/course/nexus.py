"""Figure 1: the research-teaching nexus (Healey's model).

Two axes classify a teaching activity:

* **participation** — are students an *audience* or active *participants*?
* **content emphasis** — is the emphasis on *research content* or on
  research *processes and problems*?

The four quadrants (Healey 2005, as reproduced in the paper's Figure 1):

=====================  ==================  =========================
quadrant                participation       emphasis
=====================  ==================  =========================
research-led            audience            research content
research-oriented       audience            processes and problems
research-tutored        participants        research content
research-based          participants        processes and problems
=====================  ==================  =========================

``SOFTENG751_ACTIVITIES`` classifies the course's own components, which
is what makes the course "research-infused": it occupies three of the
four quadrants, deliberately omitting research-oriented teaching (§III-E
lists the three reasons).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "Participation",
    "ContentEmphasis",
    "TeachingActivity",
    "classify",
    "NEXUS_QUADRANTS",
    "SOFTENG751_ACTIVITIES",
    "quadrant_coverage",
]


class Participation(enum.Enum):
    """Whether students receive the teaching or take part in it."""

    AUDIENCE = "students as audience"
    PARTICIPANTS = "students as participants"


class ContentEmphasis(enum.Enum):
    """Whether the emphasis is research content or research processes."""

    RESEARCH_CONTENT = "emphasis on research content"
    PROCESSES_PROBLEMS = "emphasis on research processes and problems"


NEXUS_QUADRANTS: dict[tuple[Participation, ContentEmphasis], str] = {
    (Participation.AUDIENCE, ContentEmphasis.RESEARCH_CONTENT): "research-led",
    (Participation.AUDIENCE, ContentEmphasis.PROCESSES_PROBLEMS): "research-oriented",
    (Participation.PARTICIPANTS, ContentEmphasis.RESEARCH_CONTENT): "research-tutored",
    (Participation.PARTICIPANTS, ContentEmphasis.PROCESSES_PROBLEMS): "research-based",
}


@dataclass(frozen=True)
class TeachingActivity:
    """One course component placed on the nexus axes."""

    name: str
    participation: Participation
    emphasis: ContentEmphasis
    description: str = ""

    @property
    def quadrant(self) -> str:
        return NEXUS_QUADRANTS[(self.participation, self.emphasis)]


def classify(activity: TeachingActivity) -> str:
    """Quadrant name of an activity (convenience wrapper)."""
    return activity.quadrant


#: SoftEng 751's own activities on the model (paper §III-E).
SOFTENG751_ACTIVITIES: tuple[TeachingActivity, ...] = (
    TeachingActivity(
        name="core-concept lectures",
        participation=Participation.AUDIENCE,
        emphasis=ContentEmphasis.RESEARCH_CONTENT,
        description="weeks 1-5: shared-memory parallel programming, incl. PARC research",
    ),
    TeachingActivity(
        name="latest-research lectures",
        participation=Participation.AUDIENCE,
        emphasis=ContentEmphasis.RESEARCH_CONTENT,
        description="Parallel Task and Pyjama presented by their authors",
    ),
    TeachingActivity(
        name="group research project",
        participation=Participation.PARTICIPANTS,
        emphasis=ContentEmphasis.PROCESSES_PROBLEMS,
        description="8-week nugget project inside the PARC lab",
    ),
    TeachingActivity(
        name="group seminar presentations",
        participation=Participation.PARTICIPANTS,
        emphasis=ContentEmphasis.RESEARCH_CONTENT,
        description="weeks 7-10: students lead discussion of their topic",
    ),
    TeachingActivity(
        name="class discussions",
        participation=Participation.PARTICIPANTS,
        emphasis=ContentEmphasis.RESEARCH_CONTENT,
        description="collaborative discussion following each seminar",
    ),
    TeachingActivity(
        name="project report",
        participation=Participation.PARTICIPANTS,
        emphasis=ContentEmphasis.PROCESSES_PROBLEMS,
        description="written account of approach, risks and results",
    ),
)


def quadrant_coverage(
    activities: tuple[TeachingActivity, ...] = SOFTENG751_ACTIVITIES,
) -> dict[str, list[str]]:
    """Quadrant -> activity names; the Figure 1 content for a course.

    Every quadrant appears as a key (possibly empty) so the deliberately
    uncovered quadrant — research-oriented for SoftEng 751 — is visible.
    """
    coverage: dict[str, list[str]] = {q: [] for q in NEXUS_QUADRANTS.values()}
    for activity in activities:
        coverage[activity.quadrant].append(activity.name)
    return coverage
