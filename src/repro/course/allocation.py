"""The doodle-poll topic allocation (paper §III-D).

The protocol as described: 10 topics, capacity **two groups per topic**,
**one selection per group**, strictly **first-in-first-served** — groups
that respond earlier get their preferred topic.  Students knew the poll
release time in advance, and every student was already in a group.

The model: each group has a preference ranking over topics and an
arrival time (seeded).  Groups are processed in arrival order; each
takes its most-preferred topic that still has capacity.  The invariants
the paper's process guarantees — capacity respected, one topic per
group, everyone allocated when supply suffices — are checked by the
property tests, and the fairness signal (which preference rank each
group achieved) is what the allocation bench reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.course.groups import Group
from repro.course.topics import TOPICS, Topic
from repro.util.rng import derive

__all__ = ["PollEntry", "AllocationResult", "DoodlePoll"]


@dataclass(frozen=True)
class PollEntry:
    """One group's poll response."""

    group: Group
    arrival: float
    preferences: tuple[int, ...]  # topic numbers, best first


@dataclass
class AllocationResult:
    assignments: dict[str, int]  # group_id -> topic number
    achieved_rank: dict[str, int]  # group_id -> index into its preference list
    unallocated: list[str]
    capacity: int

    def groups_on_topic(self, topic_number: int) -> list[str]:
        return sorted(g for g, t in self.assignments.items() if t == topic_number)

    @property
    def mean_achieved_rank(self) -> float:
        if not self.achieved_rank:
            return 0.0
        return sum(self.achieved_rank.values()) / len(self.achieved_rank)

    def first_choice_fraction(self) -> float:
        if not self.achieved_rank:
            return 0.0
        return sum(1 for r in self.achieved_rank.values() if r == 0) / len(self.achieved_rank)


class DoodlePoll:
    """First-in-first-served allocation with per-topic capacity."""

    def __init__(self, topics: tuple[Topic, ...] = TOPICS, capacity_per_topic: int = 2) -> None:
        if capacity_per_topic < 1:
            raise ValueError(f"capacity_per_topic must be >= 1, got {capacity_per_topic}")
        self.topics = topics
        self.capacity = capacity_per_topic

    def make_entries(self, groups: list[Group], seed: int = 0) -> list[PollEntry]:
        """Seeded preferences and arrival times for each group.

        Preferences are popularity-weighted ("some project topics had
        higher preference than others"): lower-numbered GUI-flavoured
        topics draw more first choices, but every group's ranking is a
        full permutation.
        """
        rng = derive(seed, "doodle-poll")
        weights = [1.5 if t.android_option else 1.0 for t in self.topics]
        entries = []
        for group in groups:
            remaining = list(range(len(self.topics)))
            prefs: list[int] = []
            w = list(weights)
            while remaining:
                probs = [w[i] for i in range(len(remaining))]
                total = sum(probs)
                pick = rng.random() * total
                acc = 0.0
                chosen_idx = len(remaining) - 1
                for i, p in enumerate(probs):
                    acc += p
                    if pick <= acc:
                        chosen_idx = i
                        break
                prefs.append(self.topics[remaining[chosen_idx]].number)
                remaining.pop(chosen_idx)
                w.pop(chosen_idx)
            entries.append(
                PollEntry(group=group, arrival=float(rng.exponential(60.0)), preferences=tuple(prefs))
            )
        return entries

    def allocate(self, entries: list[PollEntry]) -> AllocationResult:
        """Process entries strictly in arrival order (ties by group id)."""
        remaining = {t.number: self.capacity for t in self.topics}
        assignments: dict[str, int] = {}
        achieved: dict[str, int] = {}
        unallocated: list[str] = []
        for entry in sorted(entries, key=lambda e: (e.arrival, e.group.group_id)):
            if entry.group.group_id in assignments:
                raise ValueError(f"group {entry.group.group_id} responded twice")
            for rank, topic_number in enumerate(entry.preferences):
                if remaining.get(topic_number, 0) > 0:
                    remaining[topic_number] -= 1
                    assignments[entry.group.group_id] = topic_number
                    achieved[entry.group.group_id] = rank
                    break
            else:
                unallocated.append(entry.group.group_id)
        return AllocationResult(
            assignments=assignments,
            achieved_rank=achieved,
            unallocated=unallocated,
            capacity=self.capacity,
        )

    def run(self, groups: list[Group], seed: int = 0) -> AllocationResult:
        """Convenience: seeded entries + allocation in one call."""
        return self.allocate(self.make_entries(groups, seed=seed))
