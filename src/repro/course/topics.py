"""The ten project topics of the 2013 offering (paper §IV-C).

Each topic records the research tool it builds on, whether an Android
variant was offered, and — because this repository *implements* each
topic — the :mod:`repro` module that realises it and the bench that
regenerates its experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Topic", "TOPICS"]


@dataclass(frozen=True)
class Topic:
    number: int
    title: str
    tool: str  # "parallel-task" | "pyjama" | "java-concurrency" | "jmm"
    android_option: bool
    description: str
    module: str  # where this repo implements it
    bench: str  # the bench target that regenerates its experiment

    def __str__(self) -> str:
        android = " (Android option)" if self.android_option else ""
        return f"{self.number}. {self.title}{android} [{self.tool}]"


TOPICS: tuple[Topic, ...] = (
    Topic(
        1,
        "Thumbnails of images in a folder",
        tool="parallel-task",
        android_option=True,
        description=(
            "GUI app scaling a folder of images to thumbnails in parallel while the "
            "GUI stays responsive; strategies compared (Parallel Task, threads, "
            "SwingWorker/AsyncTask), schedules and input sizes investigated"
        ),
        module="repro.apps.images",
        bench="benchmarks/test_bench_proj01_thumbnails.py",
    ),
    Topic(
        2,
        "Parallel quicksort",
        tool="parallel-task",
        android_option=False,
        description=(
            "three parallel implementations of quicksort over a large array: "
            "Parallel Task, Pyjama, and standard threads/concurrency classes"
        ),
        module="repro.apps.sorting",
        bench="benchmarks/test_bench_proj02_quicksort.py",
    ),
    Topic(
        3,
        "Parallelisation of simple computational kernels",
        tool="pyjama",
        android_option=False,
        description=(
            "FFT, molecular dynamics, graph processing and linear algebra kernels "
            "in Pyjama, compared against plain concurrency"
        ),
        module="repro.apps.kernels",
        bench="benchmarks/test_bench_proj03_kernels.py",
    ),
    Topic(
        4,
        "Search for a string in text files of a folder",
        tool="parallel-task",
        android_option=True,
        description=(
            "parallel folder search (substring or regex) with results displayed as "
            "(file, line) pairs while the search is in progress; UI never blocks"
        ),
        module="repro.apps.textsearch",
        bench="benchmarks/test_bench_proj04_textsearch.py",
    ),
    Topic(
        5,
        "Reductions in Pyjama",
        tool="pyjama",
        android_option=False,
        description=(
            "object reductions beyond OpenMP's scalar set: collection merges and "
            "user-registered operators"
        ),
        module="repro.pyjama.reduction",
        bench="benchmarks/test_bench_proj05_reductions.py",
    ),
    Topic(
        6,
        "Task-aware libraries for Parallel Task",
        tool="parallel-task",
        android_option=False,
        description=(
            "task-safe counterparts of the thread-safe classes: thread-safe does "
            "not equal correct in a tasking model"
        ),
        module="repro.ptask.tasksafe",
        bench="benchmarks/test_bench_proj06_tasksafe.py",
    ),
    Topic(
        7,
        "PDF searching",
        tool="parallel-task",
        android_option=True,
        description=(
            "search local PDFs for a query; granularity (per page, per file), "
            "thread counts, interim updates, responsive GUI"
        ),
        module="repro.apps.pdfsearch",
        bench="benchmarks/test_bench_proj07_pdfsearch.py",
    ),
    Topic(
        8,
        "Understanding and coping with the Java memory model",
        tool="jmm",
        android_option=False,
        description=(
            "snippets demonstrating races, visibility stalls and deadlocks, with "
            "fixes and their pros/cons; educational artefact"
        ),
        module="repro.memmodel",
        bench="benchmarks/test_bench_proj08_memmodel.py",
    ),
    Topic(
        9,
        "Parallel use of collections",
        tool="java-concurrency",
        android_option=False,
        description=(
            "thread-safe collections vs standard collections with locks, across "
            "locking mechanisms and read/write mixes"
        ),
        module="repro.concurrentlib",
        bench="benchmarks/test_bench_proj09_collections.py",
    ),
    Topic(
        10,
        "Fast web access through concurrent connections",
        tool="parallel-task",
        android_option=True,
        description=(
            "download many pages concurrently; how many connections should be "
            "opened at the same time?"
        ),
        module="repro.apps.webfetch",
        bench="benchmarks/test_bench_proj10_webaccess.py",
    ),
)
