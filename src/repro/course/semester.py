"""End-to-end semester simulation (paper §V-B's outcomes, executable).

One call runs the whole course: cohort → groups → doodle-poll topic
allocation → weekly project work committed to per-group subversion
repositories (with PARC hygiene checked) → seminars in weeks 7-10 →
tests → grading with contribution moderation → Likert survey.  The
semester bench regenerates the §V-B outcome signals from the result:
every group allocated, two groups per topic producing distinct work,
repositories assessable per member, grades dominated by group work, and
Masters-taught students flowing on to PARC projects.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.course.allocation import AllocationResult, DoodlePoll
from repro.course.assessment import ASSESSMENT_SCHEME, GradeBook, StudentMarks
from repro.course.groups import Group, form_groups
from repro.course.quiz import generate_quiz, grade, simulate_student_answers
from repro.course.schedule import Week
from repro.course.students import Student, make_cohort
from repro.course.survey import (
    PAPER_QUESTIONS,
    LikertSummary,
    OpenComment,
    run_survey,
    sample_open_comments,
)
from repro.course.topics import TOPICS
from repro.util.rng import derive
from repro.vcs.hygiene import HygieneReport, check_hygiene
from repro.vcs.repo import Repository

__all__ = ["SemesterConfig", "SemesterResult", "run_semester"]


@dataclass(frozen=True)
class SemesterConfig:
    n_students: int = 60
    group_size: int = 3
    seed: int = 2013  # the offering reported in the paper
    project_weeks: int = 8  # §III-D: 8 weeks of development time
    capacity_per_topic: int = 2


@dataclass
class SemesterResult:
    config: SemesterConfig
    students: list[Student]
    groups: list[Group]
    allocation: AllocationResult
    repos: dict[str, Repository]  # group_id -> repo
    hygiene: dict[str, HygieneReport]
    marks: dict[str, StudentMarks]  # student_id -> final component marks
    survey: list[LikertSummary]
    comments: list[OpenComment]

    def final_grade(self, student_id: str) -> float:
        return self.marks[student_id].final()

    def grade_distribution(self) -> list[float]:
        return sorted(self.final_grade(s.student_id) for s in self.students)

    def masters_continuing(self) -> list[Student]:
        """Masters-taught students who do well continue with PARC (§V-B)."""
        return [
            s
            for s in self.students
            if s.masters and self.final_grade(s.student_id) >= 70.0
        ]


def _simulate_group_repo(group: Group, topic_number: int, config: SemesterConfig) -> Repository:
    """Weekly commits per member, proportional to productivity."""
    rng = derive(config.seed, "repo", group.group_id)
    repo = Repository(name=f"{group.group_id}-topic{topic_number}")
    repo.commit(
        group.members[0].student_id,
        "project skeleton per PARC protocol",
        {
            "README.md": f"# {group.group_id} topic {topic_number}\n",
            "src/main.py": "def main():\n    pass\n",
            "tests/test_main.py": "def test_main():\n    pass\n",
            "benchmarks/bench_main.py": "pass\n",
        },
        timestamp=0.0,
    )
    t = 1.0
    file_counter = 0
    for week in range(config.project_weeks):
        for member in group.members:
            n_commits = int(rng.poisson(member.productivity))
            for _ in range(n_commits):
                file_counter += 1
                lines = int(rng.integers(5, 80))
                path = f"src/feature_{file_counter % 7}.py"
                content = "\n".join(f"line{i}" for i in range(lines)) + "\n"
                repo.commit(
                    member.student_id,
                    f"week {week + 1}: work on {path}",
                    {path: content},
                    timestamp=t,
                )
                t += 1.0
    return repo


def _test_mark(ability: float, rng: np.random.Generator, spread: float = 10.0) -> float:
    return float(np.clip(ability * 100.0 + rng.normal(0.0, spread), 0.0, 100.0))


def run_semester(config: SemesterConfig = SemesterConfig()) -> SemesterResult:
    """Simulate the full offering; deterministic per config."""
    students = make_cohort(config.n_students, seed=config.seed)
    groups = form_groups(students, group_size=config.group_size, seed=config.seed)

    poll = DoodlePoll(TOPICS, capacity_per_topic=config.capacity_per_topic)
    allocation = poll.run(groups, seed=config.seed)

    rng = derive(config.seed, "marks")
    gradebook = GradeBook(ASSESSMENT_SCHEME)
    # Test 1 is an actual generated instrument (week 6, core concepts):
    # every student sits the same paper; answers depend on ability.
    test1_quiz = generate_quiz(seed=config.seed, n_questions=10)
    repos: dict[str, Repository] = {}
    hygiene: dict[str, HygieneReport] = {}
    marks: dict[str, StudentMarks] = {}

    for group in groups:
        topic_number = allocation.assignments.get(group.group_id)
        if topic_number is None:
            continue  # supply shortfall: handled by callers/tests
        repo = _simulate_group_repo(group, topic_number, config)
        repos[group.group_id] = repo
        hygiene[group.group_id] = check_hygiene(repo.checkout())

        # Group marks correlate with mean ability (plus noise); the two
        # groups on one topic genuinely differ — "considerably different
        # (but excellent) results".
        impl_mark = float(np.clip(group.mean_ability * 95 + rng.normal(0, 6), 0, 100))
        report_mark = float(np.clip(group.mean_ability * 92 + rng.normal(0, 6), 0, 100))
        test1 = {
            m.student_id: grade(
                test1_quiz,
                simulate_student_answers(
                    test1_quiz, m.ability, seed=config.seed * 1009 + int(m.student_id[1:])
                ),
            )
            for m in group.members
        }
        seminar = {m.student_id: _test_mark(m.ability, rng, spread=7.0) for m in group.members}
        test2 = {m.student_id: _test_mark(m.ability, rng) for m in group.members}

        group_marks = gradebook.grade_group(
            group,
            test1=test1,
            seminar=seminar,
            test2=test2,
            implementation_group_mark=impl_mark,
            report_group_mark=report_mark,
            repo=repo,
        )
        marks.update(group_marks)

    survey = run_survey(PAPER_QUESTIONS, n_respondents=config.n_students, seed=config.seed)
    # roughly a third of a cohort leaves an open comment
    comments = sample_open_comments(max(5, config.n_students // 3), seed=config.seed)

    return SemesterResult(
        config=config,
        students=students,
        groups=groups,
        allocation=allocation,
        repos=repos,
        hygiene=hygiene,
        marks=marks,
        survey=survey,
        comments=comments,
    )
