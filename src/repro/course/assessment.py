"""The assessment scheme (paper §III-C).

Components and weights, exactly as run:

=========================  ======  =========================================
component                   weight  basis
=========================  ======  =========================================
test 1                       25%    individual; core concepts of weeks 1-5
group seminar                20%    individual assessment within the group
test 2                       10%    individual; content of all presentations
project implementation      25%    group mark, moderated per member by
                                    subversion contribution + peer evaluation
project report               20%    group mark
=========================  ======  =========================================

"In most cases, students within a team were awarded equal marks" — the
moderation only bites when a member's combined contribution signal falls
well below an equal share.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.course.groups import Group
from repro.vcs.repo import Repository
from repro.vcs.stats import contribution_shares

__all__ = ["AssessmentScheme", "ASSESSMENT_SCHEME", "StudentMarks", "GradeBook"]


@dataclass(frozen=True)
class AssessmentScheme:
    """Weights in percent; must total 100."""

    test1: float = 25.0
    seminar: float = 20.0
    test2: float = 10.0
    implementation: float = 25.0
    report: float = 20.0

    def __post_init__(self) -> None:
        total = self.test1 + self.seminar + self.test2 + self.implementation + self.report
        if abs(total - 100.0) > 1e-9:
            raise ValueError(f"assessment weights must total 100, got {total}")

    @property
    def individual_lecture_weight(self) -> float:
        """The paper's observation: 'only 25% of the grade targeted
        individual understanding of the lecture-style material'."""
        return self.test1

    @property
    def group_weight(self) -> float:
        """Seminar + implementation + report: the group-work share."""
        return self.seminar + self.implementation + self.report

    def components(self) -> dict[str, float]:
        return {
            "test1": self.test1,
            "seminar": self.seminar,
            "test2": self.test2,
            "implementation": self.implementation,
            "report": self.report,
        }


ASSESSMENT_SCHEME = AssessmentScheme()


@dataclass
class StudentMarks:
    """Raw component marks for one student, each in [0, 100]."""

    test1: float
    seminar: float
    test2: float
    implementation: float
    report: float

    def __post_init__(self) -> None:
        for name, value in vars(self).items():
            if not 0.0 <= value <= 100.0:
                raise ValueError(f"{name} mark must be in [0, 100], got {value}")

    def final(self, scheme: AssessmentScheme = ASSESSMENT_SCHEME) -> float:
        w = scheme.components()
        return (
            self.test1 * w["test1"]
            + self.seminar * w["seminar"]
            + self.test2 * w["test2"]
            + self.implementation * w["implementation"]
            + self.report * w["report"]
        ) / 100.0


def moderation_factor(
    svn_share: float,
    peer_share: float,
    group_size: int,
    leniency: float = 0.6,
) -> float:
    """Per-member multiplier on the group implementation mark.

    ``svn_share``/``peer_share`` are the member's observed shares of the
    group's subversion churn and peer-evaluation credit; an equal share
    is ``1/group_size``.  Members at or above ``leniency`` x equal-share
    keep the full group mark (the paper: equal marks in most cases);
    below that, the mark scales down proportionally.
    """
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    equal = 1.0 / group_size
    combined = 0.5 * (svn_share + peer_share)
    threshold = leniency * equal
    if combined >= threshold:
        return 1.0
    return max(0.0, combined / threshold)


class GradeBook:
    """Assemble final grades for a group from marks + contribution data."""

    def __init__(self, scheme: AssessmentScheme = ASSESSMENT_SCHEME) -> None:
        self.scheme = scheme

    def grade_group(
        self,
        group: Group,
        *,
        test1: dict[str, float],
        seminar: dict[str, float],
        test2: dict[str, float],
        implementation_group_mark: float,
        report_group_mark: float,
        repo: Repository,
        peer_shares: dict[str, float] | None = None,
    ) -> dict[str, StudentMarks]:
        """Final component marks per member id.

        Implementation marks start from the group mark and are moderated
        by subversion contribution (and peer evaluation when supplied);
        the report mark is a group mark, per §III-C.
        """
        svn = contribution_shares(repo)
        out: dict[str, StudentMarks] = {}
        for member in group.members:
            sid = member.student_id
            svn_share = svn.get(sid, 0.0)
            peer_share = (
                peer_shares.get(sid, 1.0 / group.size) if peer_shares else 1.0 / group.size
            )
            factor = moderation_factor(svn_share, peer_share, group.size)
            out[sid] = StudentMarks(
                test1=test1[sid],
                seminar=seminar[sid],
                test2=test2[sid],
                implementation=implementation_group_mark * factor,
                report=report_group_mark,
            )
        return out
