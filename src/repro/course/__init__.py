"""The course machinery of SoftEng 751.

Everything the paper describes about how the course itself runs, as an
adoptable library an instructor could reuse:

* :mod:`repro.course.nexus` — the research-teaching nexus model (Fig. 1)
  and the classification of the course's activities on it;
* :mod:`repro.course.schedule` — the semester structure (Fig. 2);
* :mod:`repro.course.topics` — the ten project topics (§IV-C);
* :mod:`repro.course.students` / ``groups`` — cohort and group formation;
* :mod:`repro.course.allocation` — the first-in-first-served doodle-poll
  topic allocation with capacity 2 per topic (§III-D);
* :mod:`repro.course.assessment` — the grade scheme (§III-C) including
  subversion-based contribution moderation and peer evaluation;
* :mod:`repro.course.survey` — the Likert evaluation (§V-A);
* :mod:`repro.course.semester` — the end-to-end semester simulation.
"""

from repro.course.allocation import AllocationResult, DoodlePoll
from repro.course.assessment import ASSESSMENT_SCHEME, AssessmentScheme, GradeBook
from repro.course.groups import Group, form_groups
from repro.course.nexus import (
    NEXUS_QUADRANTS,
    SOFTENG751_ACTIVITIES,
    ContentEmphasis,
    Participation,
    TeachingActivity,
    classify,
)
from repro.course.schedule import SOFTENG751_SCHEDULE, Week, WeekUse, build_semester
from repro.course.students import Student, make_cohort
from repro.course.quiz import Quiz, QuizQuestion, generate_quiz
from repro.course.reports import course_report, group_report
from repro.course.semester import SemesterConfig, SemesterResult, run_semester
from repro.course.survey import PAPER_QUESTIONS, LikertQuestion, LikertSummary, run_survey
from repro.course.topics import TOPICS, Topic

__all__ = [
    "Participation",
    "ContentEmphasis",
    "TeachingActivity",
    "classify",
    "NEXUS_QUADRANTS",
    "SOFTENG751_ACTIVITIES",
    "Week",
    "WeekUse",
    "build_semester",
    "SOFTENG751_SCHEDULE",
    "Topic",
    "TOPICS",
    "Student",
    "make_cohort",
    "Group",
    "form_groups",
    "DoodlePoll",
    "AllocationResult",
    "AssessmentScheme",
    "ASSESSMENT_SCHEME",
    "GradeBook",
    "LikertQuestion",
    "LikertSummary",
    "PAPER_QUESTIONS",
    "run_survey",
    "SemesterConfig",
    "SemesterResult",
    "run_semester",
    "Quiz",
    "QuizQuestion",
    "generate_quiz",
    "course_report",
    "group_report",
]
