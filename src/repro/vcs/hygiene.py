"""The PARC repository protocol, as executable checks.

Paper §IV-A: "students were provided with documentation regarding good
hygiene in the directory structure for their project.  This included
information such as separating their source code from tests and
benchmarks, what files to exclude from the subversion server, and so
on", plus the rule that all committed code works on Linux ("taking minor
differences such as file separators and new lines into consideration").

Each rule is a checker producing :class:`Violation` records; the
semester simulation grades repositories with these, and student-facing
CI would run them per commit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

__all__ = ["Violation", "HygieneReport", "check_hygiene", "RULES"]

#: artefacts that must never be committed
_EXCLUDED_SUFFIXES = (".class", ".o", ".so", ".pyc", ".jar", ".log", ".tmp")
_EXCLUDED_NAMES = (".DS_Store", "Thumbs.db")
_EXCLUDED_DIRS = ("bin", "build", "out", "target", ".idea", "__pycache__")

_TOP_LEVEL_EXPECTED = ("src", "tests", "benchmarks")


@dataclass(frozen=True)
class Violation:
    rule: str
    path: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.rule}] {self.path}: {self.detail}"


@dataclass(frozen=True)
class HygieneReport:
    violations: tuple[Violation, ...]

    @property
    def clean(self) -> bool:
        return not self.violations

    def by_rule(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for v in self.violations:
            out[v.rule] = out.get(v.rule, 0) + 1
        return out

    def __str__(self) -> str:
        if self.clean:
            return "hygiene: clean"
        return "hygiene: " + "; ".join(f"{r}={n}" for r, n in sorted(self.by_rule().items()))


def _check_excluded_artifacts(tree: Mapping[str, str]) -> list[Violation]:
    out = []
    for path in tree:
        parts = path.split("/")
        name = parts[-1]
        if name in _EXCLUDED_NAMES or any(name.endswith(s) for s in _EXCLUDED_SUFFIXES):
            out.append(Violation("excluded-artifact", path, "build artefact / junk file committed"))
        elif any(d in _EXCLUDED_DIRS for d in parts[:-1]):
            out.append(Violation("excluded-artifact", path, "file inside an excluded directory"))
    return out


def _check_structure(tree: Mapping[str, str]) -> list[Violation]:
    """Source must live under src/, tests under tests/, benches under
    benchmarks/ — 'separating source code from tests and benchmarks'."""
    out = []
    code_ext = (".py", ".java", ".c", ".cpp", ".rs")
    for path in tree:
        parts = path.split("/")
        if len(parts) == 1 and path.endswith(code_ext):
            out.append(Violation("structure", path, "code at the repository root; use src/"))
            continue
        top = parts[0]
        name = parts[-1].lower()
        is_test = name.startswith("test") or name.endswith(tuple(f"test{e}" for e in code_ext))
        is_bench = "bench" in name
        if is_test and top not in ("tests", "test"):
            out.append(Violation("structure", path, "test file outside tests/"))
        elif is_bench and top != "benchmarks":
            out.append(Violation("structure", path, "benchmark outside benchmarks/"))
    return out


def _check_portability(tree: Mapping[str, str]) -> list[Violation]:
    """Committed code must run on the Linux PARC systems."""
    out = []
    for path, content in tree.items():
        if "\r\n" in content:
            out.append(Violation("portability", path, "CRLF line endings"))
        if "\\\\" in content or ":\\" in content:
            out.append(Violation("portability", path, "Windows-style path separator in source"))
    return out


def _check_readme(tree: Mapping[str, str]) -> list[Violation]:
    if not any(p.lower() in ("readme", "readme.md", "readme.txt") for p in tree):
        return [Violation("readme", "README.md", "project has no README")]
    return []


RULES: dict[str, Callable[[Mapping[str, str]], list[Violation]]] = {
    "excluded-artifact": _check_excluded_artifacts,
    "structure": _check_structure,
    "portability": _check_portability,
    "readme": _check_readme,
}


def check_hygiene(tree: Mapping[str, str]) -> HygieneReport:
    """Run every PARC protocol rule over a checked-out tree."""
    violations: list[Violation] = []
    for rule in RULES.values():
        violations.extend(rule(tree))
    return HygieneReport(violations=tuple(sorted(violations, key=lambda v: (v.rule, v.path))))
