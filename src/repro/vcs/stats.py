"""Per-author contribution statistics from the revision history.

This is the instructors' individual-assessment signal (§III-C: "subversion
logs were assessed to gauge individual member contributions").  Line
deltas are computed against the previous revision's content, so moving or
rewriting counts realistically rather than by commit count alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.vcs.repo import Repository

__all__ = ["AuthorStats", "contribution_report"]


@dataclass
class AuthorStats:
    author: str
    commits: int = 0
    lines_added: int = 0
    lines_removed: int = 0
    paths_touched: set[str] = field(default_factory=set)

    @property
    def net_lines(self) -> int:
        return self.lines_added - self.lines_removed

    @property
    def churn(self) -> int:
        return self.lines_added + self.lines_removed

    def __str__(self) -> str:
        return (
            f"{self.author}: {self.commits} commits, +{self.lines_added}/-{self.lines_removed} "
            f"lines, {len(self.paths_touched)} paths"
        )


def _line_count(content: str | None) -> int:
    if not content:
        return 0
    return content.count("\n") + (0 if content.endswith("\n") else 1)


def contribution_report(repo: Repository) -> dict[str, AuthorStats]:
    """Stats per author over the whole history."""
    stats: dict[str, AuthorStats] = {}
    tree: dict[str, str] = {}
    for rev in repo.revisions():
        s = stats.setdefault(rev.author, AuthorStats(author=rev.author))
        s.commits += 1
        for path, content in rev.changes:
            before = _line_count(tree.get(path))
            after = _line_count(content)
            if content is None:
                s.lines_removed += before
                tree.pop(path, None)
            else:
                if after >= before:
                    s.lines_added += after - before
                else:
                    s.lines_removed += before - after
                tree[path] = content
            s.paths_touched.add(path)
    return stats


def contribution_shares(repo: Repository) -> dict[str, float]:
    """Each author's share of total churn (the fairness signal).

    Returns an empty dict for an empty repository; shares sum to 1
    otherwise (authors with zero churn get a zero share).
    """
    stats = contribution_report(repo)
    total = sum(s.churn for s in stats.values())
    if total == 0:
        return {a: 0.0 for a in stats}
    return {a: s.churn / total for a, s in stats.items()}
