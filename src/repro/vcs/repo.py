"""The revision store.

Semantics follow subversion's shape at the scale the course needs:
monotonically numbered revisions, each recording author, message,
timestamp and a set of path changes (new content, or ``None`` for a
deletion).  ``checkout(rev)`` reconstructs the full tree at a revision;
``log`` filters history by path prefix and author.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterator, Mapping

__all__ = ["Revision", "Repository"]


@dataclass(frozen=True)
class Revision:
    """One committed change set."""

    number: int
    author: str
    message: str
    timestamp: float
    changes: tuple[tuple[str, str | None], ...]  # path -> content (None = delete)

    @property
    def paths(self) -> tuple[str, ...]:
        return tuple(p for p, _ in self.changes)

    def __str__(self) -> str:
        return f"r{self.number} | {self.author} | {self.message} ({len(self.changes)} paths)"


def _validate_path(path: str) -> None:
    if not path or path.startswith("/") or path.endswith("/"):
        raise ValueError(f"invalid path {path!r}: must be relative, non-empty")
    if "\\" in path:
        raise ValueError(f"invalid path {path!r}: use forward slashes (PARC runs Linux)")
    if ".." in path.split("/"):
        raise ValueError(f"invalid path {path!r}: no parent traversal")


class Repository:
    """An in-memory repository; thread-safe (commits serialise)."""

    def __init__(self, name: str = "repo") -> None:
        self.name = name
        self._revisions: list[Revision] = []
        self._lock = threading.Lock()

    @property
    def head(self) -> int:
        """The latest revision number (0 = empty repository)."""
        with self._lock:
            return len(self._revisions)

    def commit(
        self,
        author: str,
        message: str,
        changes: Mapping[str, str | None],
        timestamp: float | None = None,
    ) -> Revision:
        """Record a change set; returns the new revision.

        ``changes`` maps path to new full content, or ``None`` to delete.
        Deleting a path that does not exist at HEAD is an error (matching
        svn's behaviour of refusing bogus deletes).
        """
        if not changes:
            raise ValueError("empty commit")
        if not author:
            raise ValueError("commit needs an author")
        for path in changes:
            _validate_path(path)
        with self._lock:
            current = self._tree_at(len(self._revisions))
            for path, content in changes.items():
                if content is None and path not in current:
                    raise ValueError(f"cannot delete nonexistent path {path!r}")
            number = len(self._revisions) + 1
            ts = timestamp if timestamp is not None else float(number)
            if self._revisions and ts < self._revisions[-1].timestamp:
                raise ValueError(
                    f"timestamp {ts} precedes previous revision "
                    f"({self._revisions[-1].timestamp})"
                )
            rev = Revision(
                number=number,
                author=author,
                message=message,
                timestamp=ts,
                changes=tuple(sorted(changes.items())),
            )
            self._revisions.append(rev)
            return rev

    def _tree_at(self, rev: int) -> dict[str, str]:
        tree: dict[str, str] = {}
        for revision in self._revisions[:rev]:
            for path, content in revision.changes:
                if content is None:
                    tree.pop(path, None)
                else:
                    tree[path] = content
        return tree

    def checkout(self, rev: int | None = None) -> dict[str, str]:
        """Full tree (path -> content) at ``rev`` (default HEAD)."""
        with self._lock:
            if rev is None:
                rev = len(self._revisions)
            if not 0 <= rev <= len(self._revisions):
                raise ValueError(f"revision {rev} out of range (head is {len(self._revisions)})")
            return self._tree_at(rev)

    def cat(self, path: str, rev: int | None = None) -> str:
        """Content of one path at a revision; KeyError if absent."""
        tree = self.checkout(rev)
        if path not in tree:
            raise KeyError(f"{path!r} not in repository at r{rev if rev is not None else self.head}")
        return tree[path]

    def log(
        self,
        path_prefix: str | None = None,
        author: str | None = None,
    ) -> list[Revision]:
        """Revisions newest-first, filtered like ``svn log``."""
        with self._lock:
            revisions = list(self._revisions)
        out = []
        for rev in reversed(revisions):
            if author is not None and rev.author != author:
                continue
            if path_prefix is not None and not any(
                p == path_prefix or p.startswith(path_prefix.rstrip("/") + "/")
                for p in rev.paths
            ):
                continue
            out.append(rev)
        return out

    def revisions(self) -> Iterator[Revision]:
        """All revisions oldest-first."""
        with self._lock:
            return iter(list(self._revisions))

    def authors(self) -> set[str]:
        with self._lock:
            return {r.author for r in self._revisions}

    def __len__(self) -> int:
        return self.head

    def __repr__(self) -> str:
        return f"Repository({self.name!r}, head=r{self.head})"
