"""Line-level provenance: ``svn blame`` for the mini repository.

Instructors assessing individual contributions need more than commit
counts — *who wrote the lines that survived* is the better signal.
``annotate`` replays a path's history, carrying per-line attribution
through each revision with a diff (``difflib.SequenceMatcher``): lines
in ``equal`` blocks keep their original author; inserted or replaced
lines belong to the revision that introduced them.
"""

from __future__ import annotations

from dataclasses import dataclass
from difflib import SequenceMatcher

from repro.vcs.repo import Repository

__all__ = ["BlameLine", "annotate", "blame_summary"]


@dataclass(frozen=True)
class BlameLine:
    """One annotated line of the file at the requested revision."""

    line_no: int  # 1-based
    text: str
    author: str
    revision: int

    def __str__(self) -> str:
        return f"{self.revision:>5} {self.author:>12} | {self.text}"


def _split_lines(content: str) -> list[str]:
    if content == "":
        return []
    lines = content.split("\n")
    if lines and lines[-1] == "":
        lines.pop()  # trailing newline does not make an extra line
    return lines


def annotate(repo: Repository, path: str, rev: int | None = None) -> list[BlameLine]:
    """Per-line attribution of ``path`` at revision ``rev`` (default HEAD).

    Raises ``KeyError`` if the path does not exist at that revision.
    """
    if rev is None:
        rev = repo.head
    repo.cat(path, rev)  # raises KeyError if absent at rev

    annotated: list[tuple[str, str, int]] = []  # (text, author, revision)
    for revision in repo.revisions():
        if revision.number > rev:
            break
        change = dict(revision.changes).get(path, _MISSING)
        if change is _MISSING:
            continue
        if change is None:  # deleted; may be re-added later
            annotated = []
            continue
        new_lines = _split_lines(change)
        old_lines = [t for t, _a, _r in annotated]
        matcher = SequenceMatcher(a=old_lines, b=new_lines, autojunk=False)
        next_annotated: list[tuple[str, str, int]] = []
        for op, i1, i2, j1, j2 in matcher.get_opcodes():
            if op == "equal":
                next_annotated.extend(annotated[i1:i2])
            elif op in ("replace", "insert"):
                for j in range(j1, j2):
                    next_annotated.append((new_lines[j], revision.author, revision.number))
            # 'delete': contributes nothing
        annotated = next_annotated

    return [
        BlameLine(line_no=i + 1, text=text, author=author, revision=revision)
        for i, (text, author, revision) in enumerate(annotated)
    ]


_MISSING = object()


def blame_summary(repo: Repository, path: str, rev: int | None = None) -> dict[str, int]:
    """Surviving-line counts per author — the assessment-grade signal."""
    counts: dict[str, int] = {}
    for line in annotate(repo, path, rev):
        counts[line.author] = counts.get(line.author, 0) + 1
    return counts
