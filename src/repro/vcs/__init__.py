"""A miniature subversion: revisions, logs, contribution stats, hygiene.

Paper §IV-A: students worked in the research group's version control;
instructors "were able to view the development history for each group
... powerful not only for assessment of the group as a whole, but also
in regards to individual student contributions", and groups had to
follow documented repository etiquette (directory hygiene, excluded
files, Linux portability).  This package makes all of that executable:

* :class:`~repro.vcs.repo.Repository` — an in-memory revisioned store
  with commit/checkout/log;
* :mod:`repro.vcs.stats` — per-author contribution reports (the
  individual-assessment signal);
* :mod:`repro.vcs.hygiene` — the PARC protocol checks as code.
"""

from repro.vcs.blame import BlameLine, annotate, blame_summary
from repro.vcs.hygiene import HygieneReport, Violation, check_hygiene
from repro.vcs.repo import Repository, Revision
from repro.vcs.stats import AuthorStats, contribution_report, contribution_shares

__all__ = [
    "Repository",
    "Revision",
    "BlameLine",
    "annotate",
    "blame_summary",
    "AuthorStats",
    "contribution_report",
    "contribution_shares",
    "check_hygiene",
    "HygieneReport",
    "Violation",
]
