"""Command-line front end: list and run the paper's experiments.

Usage::

    python -m repro list                     # every registered experiment
    python -m repro run fig2                 # print one experiment's tables
    python -m repro run all -o reports/      # run everything, save reports
    python -m repro trace proj2              # run under tracing, write Chrome JSON
    python -m repro analyze abl_sched        # work/span analytics + HTML report
    python -m repro compare abl_sched        # gate a run against its stored baseline
    python -m repro chaos proj10             # run one experiment under injected faults
    python -m repro top proj2                # live TTY dashboard while it runs
    python -m repro flame proj6 --repeat 200 # sampling profiler + flamegraph
    python -m repro serve overload           # seeded traffic through the serving gateway
    python -m repro runs list                # stored run history, per experiment
    python -m repro runs timeline pool_micro # cross-run trajectory + change-points
    python -m repro webdemo out_dir/         # generate the race-condition site
    python -m repro topics                   # the ten project topics
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any


def _cmd_list(_args: argparse.Namespace) -> int:
    import repro.bench as bench

    for exp in bench.all_experiments():
        print(f"{exp.exp_id:12s} {exp.paper_ref:38s} {exp.title}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    import repro.bench as bench

    if args.experiment == "all":
        experiments = bench.all_experiments()
    else:
        try:
            experiments = [bench.get_experiment(args.experiment)]
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
    for exp in experiments:
        result = exp()
        rendered = result.render()
        print(rendered)
        print()
        if args.output:
            out = Path(args.output)
            out.mkdir(parents=True, exist_ok=True)
            (out / f"{exp.exp_id}.txt").write_text(rendered + "\n")
    if args.output:
        print(f"reports written to {args.output}/", file=sys.stderr)
    return 0


def _backend_scope(args: argparse.Namespace):
    """Context manager realising the shared ``--backend``/``--cores`` flags.

    Installs :func:`repro.executor.backend_override` so every
    *redirectable* ``create()`` call the experiment makes (inline,
    threads, processes — sim stays sim, its virtual clock is the point)
    lands on the chosen backend / core count.  The override is
    thread-local, so commands that run the experiment on a worker thread
    (``top``) must enter this scope on that thread.
    """
    from contextlib import nullcontext

    kind = getattr(args, "backend", None)
    cores = getattr(args, "cores", None)
    if kind is None and cores is None:
        return nullcontext()
    from repro.executor import backend_override

    return backend_override(kind=kind, cores=cores)


def _require_experiment(exp_id: str):
    """Look up one experiment, or print the unknown-id error and return
    ``None`` (callers exit 2).  The single lookup path every experiment
    subcommand shares."""
    import repro.bench as bench

    try:
        return bench.get_experiment(exp_id)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return None


def _record_run(args: argparse.Namespace, record: Any, virtual: bool = False, at: float = 0.0) -> None:
    """Best-effort append of one run record to the run-history store.

    Commands never fail because history could not be written — a broken
    store is a stderr warning, not an exit code.  ``virtual=True`` stamps
    the record from an injected clock (timestamp ``at``, revision
    ``sim``) so deterministic golden runs dedup to a byte-identical
    store on re-ingest; real-backend runs get the wall clock and the git
    revision.  ``--no-record`` skips entirely, ``--store`` redirects.
    """
    if getattr(args, "no_record", False):
        return
    from contextlib import nullcontext

    try:
        from repro.obs.store import RunStore, use_clock
        from repro.util.stopwatch import ManualClock

        store = RunStore(getattr(args, "store", None))
        scope: Any = use_clock(ManualClock(at), "sim") if virtual else nullcontext()
        with scope:
            rec = store.add(record)
        print(f"run recorded -> {store.root} ({rec.exp_id}, {rec.kind})", file=sys.stderr)
    except Exception as exc:  # noqa: BLE001 - history is advisory, never fatal
        print(f"warning: run-history record failed: {exc}", file=sys.stderr)


def _cmd_trace(args: argparse.Namespace) -> int:
    """Run one experiment under an ambient trace recorder.

    Every executor the experiment constructs (however deep) picks the
    recorder up via :func:`repro.obs.use`, so no experiment code needs a
    ``trace=`` parameter.  The span/event timeline is written as Chrome
    ``trace_event`` JSON — load it in chrome://tracing or Perfetto — and
    the metrics snapshot is printed to stderr.
    """
    from repro.obs import ChromeTraceSink, TraceRecorder, use

    exp = _require_experiment(args.experiment)
    if exp is None:
        return 2
    out_path = Path(args.output or f"trace_{exp.exp_id}.json")
    out_path.parent.mkdir(parents=True, exist_ok=True)
    recorder = TraceRecorder()
    with use(recorder):
        result = exp()
    events = recorder.events()
    ChromeTraceSink.write_events(events, out_path)
    print(result.render())
    metrics_block = result.render_metrics()
    if metrics_block:
        print(file=sys.stderr)
        print(metrics_block, file=sys.stderr)
    print(
        f"\n{len(events)} trace events -> {out_path} (open in chrome://tracing or Perfetto)",
        file=sys.stderr,
    )
    return 0


def _run_traced(exp, max_events: int | None = None):
    """Run one (already looked-up) experiment under an ambient recorder;
    returns ``(recorder, result)``."""
    from repro.obs import TraceRecorder, use

    recorder = TraceRecorder(max_events=max_events)
    with use(recorder):
        result = exp()
    return recorder, result


def _cmd_analyze(args: argparse.Namespace) -> int:
    """Run one experiment traced, print the analysis, write the HTML report.

    The terminal output is the experiment's own report followed by the
    work/span + scheduler-health summary; the self-contained HTML report
    (SVG Gantt, utilization bars) lands in ``-o`` (default
    ``benchmarks/reports/``).  ``--update-baseline`` persists the
    analyzed metrics for later ``compare`` runs.
    """
    from repro.obs import render_html, update_baseline

    exp = _require_experiment(args.experiment)
    if exp is None:
        return 2
    recorder, result = _run_traced(exp, max_events=args.max_events)
    analysis = result.analysis
    if analysis is None:
        print("experiment produced no trace analysis", file=sys.stderr)
        return 1
    print(result.render())
    print()
    print(result.render_analysis(), end="")
    if recorder.dropped_events:
        print(
            f"warning: {recorder.dropped_events} events dropped (raise --max-events)",
            file=sys.stderr,
        )
    out_dir = Path(args.output or "benchmarks/reports")
    out_dir.mkdir(parents=True, exist_ok=True)
    html_path = out_dir / f"analysis_{args.experiment}.html"
    html_path.write_text(render_html(analysis, title=f"{args.experiment} — trace analysis"))
    print(f"HTML report -> {html_path}", file=sys.stderr)
    if args.update_baseline:
        path = update_baseline(args.experiment, analysis.baseline_metrics(), args.baseline)
        print(f"baseline updated -> {path}", file=sys.stderr)
    from repro.obs.store import RunRecord

    _record_run(
        args,
        RunRecord(
            exp_id=args.experiment,
            kind="analyze",
            metrics=result.flat_metrics(),
            backend=getattr(args, "backend", None),
            cores=getattr(args, "cores", None),
        ),
        virtual=getattr(args, "backend", None) is None,
    )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    """Re-run one experiment and gate it against its stored baseline.

    Exit codes: 0 = no regressions, 1 = at least one gated metric moved
    the wrong way past the threshold, 2 = unknown experiment or no
    stored baseline for it.
    """
    from repro.obs import compare_to_baseline, load_baselines

    store = load_baselines(args.baseline)
    if args.experiment not in store:
        print(
            f"no baseline for {args.experiment!r} in {args.baseline} "
            f"(known: {sorted(store)}); run "
            f"'python -m repro analyze {args.experiment} --update-baseline' first",
            file=sys.stderr,
        )
        return 2
    exp = _require_experiment(args.experiment)
    if exp is None:
        return 2
    if exp.perf:
        # Wall-clock microbench: run it *untraced* (recorder overhead must
        # never land in the measured region) and gate the metrics the
        # experiment measured itself against the committed BENCH_*.json.
        result = exp()
        current = result.metrics
        if not current:
            print("perf experiment attached no metrics", file=sys.stderr)
            return 1
    else:
        _, result = _run_traced(exp)
        if result.analysis is None:
            print("experiment produced no trace analysis", file=sys.stderr)
            return 1
        current = result.analysis.baseline_metrics()
    comparison = compare_to_baseline(
        args.experiment,
        current,
        store[args.experiment],
        threshold=args.threshold,
    )
    print(comparison.render())
    from repro.obs.store import RunRecord

    _record_run(
        args,
        RunRecord(
            exp_id=args.experiment,
            kind="compare",
            metrics={k: float(v) for k, v in current.items() if isinstance(v, (int, float))},
            backend=getattr(args, "backend", None),
            cores=getattr(args, "cores", None),
            verdicts={"baseline": "pass" if comparison.ok else "regression"},
            deltas={
                d.name: d.rel_change for d in comparison.deltas if d.rel_change is not None
            },
            tags=tuple(f"regressed:{d.name}" for d in comparison.regressions),
        ),
        virtual=getattr(args, "backend", None) is None and not exp.perf,
    )
    return 0 if comparison.ok else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Run one experiment under a seeded fault plan and summarise recovery.

    The plan is installed ambiently (:func:`repro.resilience.use_faults`)
    alongside a trace recorder, so the corpus network model retries
    failed fetches and the executors can inject task faults — without
    the experiment knowing.  The printed analysis includes the
    resilience line (cancelled/retries/faults/drained); ``--expect``
    turns it into a gate: exit 1 unless every named lifecycle event kind
    occurred at least once.
    """
    from repro.obs import TraceRecorder, use
    from repro.resilience import FaultPlan, use_faults

    exp = _require_experiment(args.experiment)
    if exp is None:
        return 2
    plan = FaultPlan(
        seed=args.seed,
        failure_rate=args.failure_rate,
        task_failure_rate=args.task_failure_rate,
        latency_spike_rate=args.latency_spike_rate,
    )
    recorder = TraceRecorder(max_events=args.max_events)
    with use(recorder), use_faults(plan):
        result = exp()
    analysis = result.analysis
    if analysis is None:
        print("experiment produced no trace analysis", file=sys.stderr)
        return 1
    print(result.render())
    print()
    print(result.render_analysis(), end="")
    print(
        f"\nchaos plan: seed={plan.seed} failure_rate={plan.failure_rate} "
        f"task_failure_rate={plan.task_failure_rate} "
        f"latency_spike_rate={plan.latency_spike_rate}",
        file=sys.stderr,
    )
    rc = 0
    verdicts = {}
    if args.expect:
        observed = {
            "cancel": analysis.cancelled,
            "retry": analysis.retries,
            "fault": analysis.faults,
            "drain": analysis.drained,
        }
        missing = []
        for kind in (k.strip() for k in args.expect.split(",") if k.strip()):
            if kind not in observed:
                print(
                    f"--expect: unknown lifecycle kind {kind!r} "
                    f"(known: {sorted(observed)})",
                    file=sys.stderr,
                )
                return 2
            if observed[kind] == 0:
                missing.append(kind)
        if missing:
            print(
                f"chaos gate FAILED: no {', '.join(missing)} events in the trace",
                file=sys.stderr,
            )
            rc = 1
        else:
            print("chaos gate passed: all expected lifecycle events observed", file=sys.stderr)
        verdicts["chaos"] = "pass" if rc == 0 else "fail"
    from repro.obs.store import RunRecord

    _record_run(
        args,
        RunRecord(
            exp_id=args.experiment,
            kind="chaos",
            metrics=result.flat_metrics(),
            backend=getattr(args, "backend", None),
            cores=getattr(args, "cores", None),
            seed=plan.seed,
            verdicts=verdicts,
            tags=(f"chaos:{args.expect}",) if args.expect else (),
        ),
        virtual=getattr(args, "backend", None) is None,
    )
    return rc


def _cmd_flame(args: argparse.Namespace) -> int:
    """Run one experiment under the sampling profiler; write a flamegraph.

    A background thread snapshots every registered worker's stack
    (``--interval`` seconds apart) while the experiment runs on the
    driver thread — which is itself registered, so single-threaded (sim,
    inline) experiments sample too.  Output: a hotspot summary on
    stdout, a self-contained ``flame_<exp>.html`` plus the raw
    collapsed-stack text in ``-o``, and with ``--serve`` a live
    ``/metrics`` + ``/healthz`` endpoint for the duration of the run
    (``--scrape-out`` saves one scrape, taken over HTTP, as proof).
    Short experiments can be looped with ``--repeat`` until the sampler
    has something to see.
    """
    from repro.obs import TraceRecorder, use
    from repro.obs.live import (
        REGISTRY,
        MetricsServer,
        SamplingProfiler,
        render_flame_html,
        render_hotspots_text,
        use_profiler,
    )

    exp = _require_experiment(args.experiment)
    if exp is None:
        return 2
    recorder = TraceRecorder(max_events=args.max_events, track_overhead=True)
    profiler = SamplingProfiler(interval=args.interval)
    server = None
    if args.serve or args.scrape_out:
        server = MetricsServer(metrics=recorder.metrics, profiler=profiler, port=args.port).start()
        print(f"serving live metrics at {server.url}", file=sys.stderr)
    handle = REGISTRY.register("driver", role="driver")
    try:
        with use(recorder), use_profiler(profiler), profiler:
            with handle.task(f"experiment:{exp.exp_id}"):
                for _ in range(args.repeat):
                    result = exp()
        if args.scrape_out and server is not None:
            import urllib.request

            body = urllib.request.urlopen(server.url, timeout=10).read().decode("utf-8")
            scrape_path = Path(args.scrape_out)
            scrape_path.parent.mkdir(parents=True, exist_ok=True)
            scrape_path.write_text(body)
            print(f"/metrics scrape -> {scrape_path}", file=sys.stderr)
    finally:
        REGISTRY.unregister(handle)
        if server is not None:
            server.stop()
    profile = result.profile if result.profile is not None else profiler.profile()
    print(render_hotspots_text(profile), end="")
    out_dir = Path(args.output or "benchmarks/reports")
    out_dir.mkdir(parents=True, exist_ok=True)
    html_path = out_dir / f"flame_{exp.exp_id}.html"
    html_path.write_text(render_flame_html(profile, title=f"{exp.exp_id} — flamegraph"))
    collapsed_path = out_dir / f"flame_{exp.exp_id}.collapsed.txt"
    collapsed_path.write_text(profile.collapsed_text())
    overhead = profiler.overhead()
    print(f"flamegraph -> {html_path}", file=sys.stderr)
    print(f"collapsed stacks -> {collapsed_path}", file=sys.stderr)
    print(
        f"sampler: {profile.total_samples} samples over {overhead['passes']:.0f} passes, "
        f"{overhead['seconds'] * 1e3:.1f} ms self-overhead",
        file=sys.stderr,
    )
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    """Live TTY dashboard: repaint worker/queue/throughput state while the
    experiment runs on a background thread.

    On a terminal each frame repaints in place; when piped, frames
    append (so tests and CI logs stay readable).  ``--frames`` bounds
    the redraw count, ``--serve`` additionally exposes ``/metrics``.
    """
    import threading

    from repro.obs import TraceRecorder, use
    from repro.obs.live import REGISTRY, Dashboard, MetricsServer

    exp = _require_experiment(args.experiment)
    if exp is None:
        return 2
    recorder = TraceRecorder(max_events=args.max_events, track_overhead=True)
    server = None
    if args.serve:
        server = MetricsServer(metrics=recorder.metrics, port=args.port).start()
        print(f"serving live metrics at {server.url}", file=sys.stderr)
    box: dict[str, object] = {}

    def runner() -> None:
        handle = REGISTRY.register("driver", role="driver")
        try:
            # the override is thread-local: re-enter it on this thread
            with _backend_scope(args), use(recorder):
                with handle.task(f"experiment:{exp.exp_id}"):
                    for _ in range(args.repeat):
                        box["result"] = exp()
        except BaseException as exc:  # noqa: BLE001 - reported after the join
            box["error"] = exc
        finally:
            REGISTRY.unregister(handle)

    thread = threading.Thread(target=runner, name="top-driver", daemon=True)
    dashboard = Dashboard(metrics=recorder.metrics)
    thread.start()
    frames = dashboard.run(
        sys.stdout,
        done=lambda: not thread.is_alive(),
        interval=args.interval,
        max_frames=args.frames,
        clear=sys.stdout.isatty(),
    )
    thread.join()
    if server is not None:
        server.stop()
    error = box.get("error")
    if error is not None:
        print(f"experiment failed: {error!r}", file=sys.stderr)
        return 1
    print(f"run complete ({frames} frames)", file=sys.stderr)
    return 0


def _parse_objectives(text: str | None):
    """``--objectives`` comma list -> tuple of Objective, or ``None``."""
    if not text:
        return None
    from repro.obs import parse_objective

    return tuple(parse_objective(s) for s in text.split(",") if s.strip())


def _cmd_serve(args: argparse.Namespace) -> int:
    """Replay a seeded arrival trace through the serving gateway.

    ``--backend`` here is the *actual* executor kind (sim included — the
    virtual-time run is the deterministic golden path), not the
    redirect-override the experiment commands use.  Prints the serving
    report; ``--update-baseline``/``--compare`` wire the run into the
    direction-aware regression gate under the id
    ``serve_<pattern>_<backend>`` (suffixed ``_slo`` when request
    tracing is on, since traced runs export extra metrics).
    ``--scrape-out`` runs traced with a live ``/metrics`` endpoint and
    saves one scrape as proof the serve gauges are exported.

    ``--slo`` (or ``--objectives``) turns on request-scoped stage
    tracing, prints the latency decomposition and the SLO verdict, and
    exits 3 when a declared objective is violated; ``--waterfall`` also
    writes the slowest-requests HTML view.  Exit codes: 0 ok, 1
    baseline regression, 2 usage error, 3 SLO violation.
    """
    from contextlib import nullcontext

    from repro.serve.loadgen import run_serve

    try:
        objectives = _parse_objectives(args.objectives)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    slo_on = args.slo or objectives is not None
    rtrace_on = slo_on or bool(args.waterfall)
    recorder = None
    server = None
    scope: Any = nullcontext()
    if args.scrape_out:
        from repro.obs import TraceRecorder, use
        from repro.obs.live import MetricsServer

        recorder = TraceRecorder(max_events=args.max_events)
        server = MetricsServer(metrics=recorder.metrics, port=args.port).start()
        print(f"serving live metrics at {server.url}", file=sys.stderr)
        scope = use(recorder)
    try:
        with scope:
            report = run_serve(
                args.pattern,
                backend=args.backend,
                cores=args.cores,
                requests=args.requests,
                seed=args.seed,
                base_rate=args.rate,
                time_scale=args.time_scale,
                trace=recorder,
                rtrace=rtrace_on,
                objectives=objectives,
                slo_window=args.slo_window,
            )
        if args.scrape_out and server is not None:
            import urllib.request

            body = urllib.request.urlopen(server.url, timeout=10).read().decode("utf-8")
            scrape_path = Path(args.scrape_out)
            scrape_path.parent.mkdir(parents=True, exist_ok=True)
            scrape_path.write_text(body)
            print(f"/metrics scrape -> {scrape_path}", file=sys.stderr)
    finally:
        if server is not None:
            server.stop()
    print(report.table().render())
    if report.stages is not None:
        print()
        print(report.stage_table().render())
        dom = report.dominant_stage()
        if dom is not None:
            print(
                f"dominant stage: {dom.stage} "
                f"(p99 {dom.p99:.6f}s, {dom.share:.1%} of traced time)"
            )
    if args.waterfall and report.stages is not None:
        from repro.obs import render_waterfall

        wf_path = Path(args.waterfall)
        wf_path.parent.mkdir(parents=True, exist_ok=True)
        wf_path.write_text(
            render_waterfall(
                report.stages,
                title=f"serve {args.pattern} on {args.backend} — slowest requests",
            )
        )
        print(f"waterfall -> {wf_path}", file=sys.stderr)
    if slo_on and report.slo is not None:
        print()
        print(report.slo.table().render())
    # tracing changes the exported metric set, so traced runs gate
    # against their own baseline id and never touch the golden one
    exp_id = f"serve_{args.pattern}_{args.backend}" + ("_slo" if rtrace_on else "")
    rc = 0
    if args.update_baseline:
        from repro.obs import update_baseline

        path = update_baseline(exp_id, report.metrics(), args.baseline)
        print(f"baseline updated -> {path}", file=sys.stderr)
    if args.compare:
        from repro.obs import compare_to_baseline, load_baselines

        store = load_baselines(args.baseline)
        if exp_id not in store:
            print(
                f"no baseline for {exp_id!r} in {args.baseline} (known: {sorted(store)}); "
                f"run 'python -m repro serve {args.pattern} --update-baseline' first",
                file=sys.stderr,
            )
            return 2
        comparison = compare_to_baseline(
            exp_id, report.metrics(), store[exp_id], threshold=args.threshold
        )
        print()
        print(comparison.render())
        if not comparison.ok:
            rc = 1
    if slo_on and report.slo is not None and not report.slo.passed:
        failed = [r.objective.label for r in report.slo.results if not r.passed]
        print(f"SLO gate FAILED: {', '.join(failed)}", file=sys.stderr)
        if rc == 0:
            rc = 3
    from repro.executor.factory import get_backend

    _record_run(
        args,
        report.run_record(
            exp_id,
            deltas=(
                {d.name: d.rel_change for d in comparison.deltas if d.rel_change is not None}
                if args.compare
                else None
            ),
            extra_verdicts=(
                {"baseline": "pass" if comparison.ok else "regression"} if args.compare else None
            ),
            tags=(
                tuple(f"regressed:{d.name}" for d in comparison.regressions)
                if args.compare
                else ()
            ),
        ),
        virtual=get_backend(args.backend).capabilities.virtual_time,
        at=report.duration,
    )
    return rc


def _cmd_slo(args: argparse.Namespace) -> int:
    """Evaluate declared SLOs over one traced serve run (verdict only).

    The focused form of ``serve --slo``: run the seeded pattern with
    request tracing, print the SLO verdict table and the burn-rate
    summary, exit 3 on violation.  Deterministic under sim — two runs
    with the same flags produce byte-identical output.
    """
    from repro.serve.loadgen import run_serve

    try:
        objectives = _parse_objectives(args.objectives)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    report = run_serve(
        args.pattern,
        backend=args.backend,
        cores=args.cores,
        requests=args.requests,
        seed=args.seed,
        base_rate=args.rate,
        time_scale=args.time_scale,
        rtrace=True,
        objectives=objectives,
        slo_window=args.slo_window,
    )
    verdict = report.slo
    assert verdict is not None  # rtrace=True always evaluates
    print(verdict.table().render())
    dom = report.dominant_stage()
    if dom is not None:
        print(
            f"dominant stage: {dom.stage} "
            f"(p99 {dom.p99:.6f}s, {dom.share:.1%} of traced time)"
        )
    if not verdict.passed:
        failed = [r.objective.label for r in verdict.results if not r.passed]
        print(f"SLO gate FAILED: {', '.join(failed)}", file=sys.stderr)
        return 3
    print("SLO gate passed", file=sys.stderr)
    return 0


def _cmd_webdemo(args: argparse.Namespace) -> int:
    from repro.memmodel import write_demo_site

    paths = write_demo_site(args.out_dir)
    print(f"wrote {len(paths)} pages to {args.out_dir}/")
    return 0


def _cmd_topics(_args: argparse.Namespace) -> int:
    from repro.course import TOPICS

    for topic in TOPICS:
        print(topic)
        print(f"    implemented in {topic.module}; bench: {topic.bench}")
    return 0


def _open_runs_store(args: argparse.Namespace):
    """Open the run-history store for a ``runs`` subcommand.

    Backfills the committed ``BENCH_*.json`` snapshots by default (so a
    fresh checkout's first query already sees the perf trajectory);
    ``--no-backfill`` opens the store as-is.
    """
    from repro.obs.store import RunStore

    bench_dir = None if args.no_backfill else args.bench_dir
    return RunStore.open(args.store, bench_dir=bench_dir)


def _cmd_runs_list(args: argparse.Namespace) -> int:
    """One row per experiment with stored history: counts, kinds, flags.

    ``--scrape-out`` additionally exports the fleet-level store gauges
    through a live Prometheus endpoint and saves one scrape (taken over
    HTTP), proving the ``repro_store_*`` series are visible.
    """
    from repro.util.tables import Table

    store = _open_runs_store(args)
    table = Table(
        ["experiment", "runs", "kinds", "regressed", "last revision"],
        title=f"run history ({store.root}, {len(store)} record(s))",
    )
    for exp_id in store.experiments():
        recs = store.query(exp=exp_id)
        kinds = sorted({r.kind for r in recs})
        table.add_row(
            [
                exp_id,
                len(recs),
                ",".join(kinds),
                sum(1 for r in recs if r.regressed),
                recs[-1].revision,
            ]
        )
    print(table.render())
    if args.scrape_out:
        import urllib.request

        from repro.obs import Metrics
        from repro.obs.live import MetricsServer
        from repro.obs.store import emit_metrics

        metrics = Metrics()
        emit_metrics(store, metrics)
        server = MetricsServer(metrics=metrics, port=args.port).start()
        try:
            body = urllib.request.urlopen(server.url, timeout=10).read().decode("utf-8")
        finally:
            server.stop()
        scrape_path = Path(args.scrape_out)
        scrape_path.parent.mkdir(parents=True, exist_ok=True)
        scrape_path.write_text(body)
        print(f"/metrics scrape -> {scrape_path}", file=sys.stderr)
    return 0


def _cmd_runs_query(args: argparse.Namespace) -> int:
    """Filter stored records; with ``--metric`` reduce them instead.

    The filter form prints one row per matching record (newest last);
    the aggregate form applies a reducer (min/max/mean/p50/p99) over one
    metric, optionally grouped by experiment/kind/backend/revision —
    "when did pool throughput last regress" is
    ``runs query --verdict regression``.
    """
    from repro.obs.store import aggregate
    from repro.util.tables import Table

    store = _open_runs_store(args)
    try:
        records = store.query(
            exp=args.experiment,
            kind=args.kind,
            backend=args.backend,
            tag=args.tag,
            verdict=args.verdict,
            since=args.since,
            limit=args.limit,
        )
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    if not records:
        print("no matching records", file=sys.stderr)
        return 0
    if args.metric:
        try:
            rows = aggregate(records, args.metric, reduce=args.reduce, group_by=args.group_by)
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
        table = Table(
            [args.group_by or "group", "n", args.reduce],
            title=f"{args.metric} ({len(records)} record(s))",
            precision=6,
        )
        for agg in rows:
            table.add_row([agg.group, agg.n, agg.value])
        print(table.render())
        return 0
    table = Table(
        ["experiment", "kind", "backend", "seed", "timestamp", "revision", "metrics", "verdicts"],
        title=f"{len(records)} record(s)",
    )
    for rec in records:
        table.add_row(
            [
                rec.exp_id,
                rec.kind,
                rec.backend or "-",
                rec.seed if rec.seed is not None else "-",
                f"{rec.timestamp:.3f}",
                rec.revision,
                len(rec.metrics),
                ",".join(f"{k}={v}" for k, v in rec.verdicts.items()) or "-",
            ]
        )
    print(table.render())
    return 0


def _cmd_runs_timeline(args: argparse.Namespace) -> int:
    """Per-metric trajectories for one experiment, change-points flagged.

    Exit codes: 0 = no change-points, 1 = at least one metric moved the
    bad way (direction-aware, the regression was *introduced* by a
    flagged run), 2 = no stored history for the experiment.  ``-o``
    writes the self-contained HTML timeline (sparkline lanes, no JS).
    """
    from repro.obs.timeline import build_timeline, render_timeline_html, render_timeline_text

    store = _open_runs_store(args)
    records = store.query(exp=args.experiment, since=args.since, limit=args.limit)
    if not records:
        known = ", ".join(store.experiments()) or "none"
        print(
            f"no stored runs for {args.experiment!r} in {store.root} (known: {known})",
            file=sys.stderr,
        )
        return 2
    metrics = tuple(m.strip() for m in args.metric.split(",") if m.strip()) if args.metric else None
    series = build_timeline(records, metrics=metrics, threshold=args.threshold)
    if not series:
        print(
            f"{len(records)} record(s) but no metric observed twice; nothing to plot",
            file=sys.stderr,
        )
        return 2
    print(render_timeline_text(args.experiment, series))
    if args.output:
        out_path = Path(args.output)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(
            render_timeline_html(args.experiment, series, threshold=args.threshold)
        )
        print(f"HTML timeline -> {out_path}", file=sys.stderr)
    n_flags = sum(len(s.changepoints) for s in series)
    if n_flags:
        print(f"{n_flags} change-point(s) detected", file=sys.stderr)
        return 1
    return 0


def _cmd_runs_ingest(args: argparse.Namespace) -> int:
    """Backfill the committed ``BENCH_*.json`` snapshots into the store."""
    from repro.obs.store import RunStore, ingest_snapshots

    store = RunStore(args.store)
    added = ingest_snapshots(store, args.bench_dir)
    print(
        f"ingested {added} snapshot record(s) from {args.bench_dir} "
        f"-> {store.root} ({len(store)} total)",
        file=sys.stderr,
    )
    return 0


def _cmd_runs_compact(args: argparse.Namespace) -> int:
    """Rewrite shards time-ordered with duplicate/foreign lines dropped."""
    from repro.obs.store import RunStore

    store = RunStore(args.store)
    removed = store.compact()
    print(
        f"compacted {store.root}: {len(store)} record(s) kept, {removed} line(s) removed",
        file=sys.stderr,
    )
    return 0


def _experiment_command(
    sub: argparse._SubParsersAction,
    name: str,
    fn: Any,
    help_text: str,
    max_events: bool = False,
    backend: bool = False,
) -> argparse.ArgumentParser:
    """Register a subcommand that operates on one experiment.

    Every such command shares the ``experiment`` positional (resolved
    through :func:`_require_experiment`) and, for the traced ones, the
    ``--max-events`` cap and the ``--backend``/``--cores`` override
    group — this helper is the single place that boilerplate lives.
    Command-specific flags are added on the returned parser.
    """
    p = sub.add_parser(name, help=help_text)
    p.add_argument("experiment")
    if max_events:
        p.add_argument("--max-events", type=int, default=None, help="cap recorded trace events")
    if backend:
        g = p.add_argument_group(
            "backend selection",
            "redirect the experiment's redirectable executors (inline/threads/processes; "
            "sim keeps its virtual clock)",
        )
        g.add_argument(
            "--backend",
            help="run the experiment's executors on this backend (name or alias; "
            "see repro.executor.available())",
        )
        g.add_argument(
            "--cores", type=int, help="override the worker count of redirected executors"
        )
    p.set_defaults(fn=fn)
    return p


def _record_flags(p: argparse.ArgumentParser) -> None:
    """The shared run-history flags on every auto-recording command."""
    g = p.add_argument_group(
        "run history",
        "successful runs are appended to the run-history store "
        "(query with 'python -m repro runs ...')",
    )
    g.add_argument(
        "--store", default=None,
        help="run-history store directory (default: $REPRO_RUNS_STORE or benchmarks/runs)",
    )
    g.add_argument(
        "--no-record", action="store_true", help="do not record this run into the store"
    )


def _store_flags(p: argparse.ArgumentParser) -> None:
    """The shared store-location flags on every ``runs`` subcommand."""
    p.add_argument(
        "--store", default=None,
        help="run-history store directory (default: $REPRO_RUNS_STORE or benchmarks/runs)",
    )
    p.add_argument(
        "--bench-dir", default="benchmarks/reports",
        help="directory of committed BENCH_*.json snapshots to backfill "
        "(default: benchmarks/reports)",
    )
    p.add_argument(
        "--no-backfill", action="store_true",
        help="open the store as-is, without backfilling BENCH_*.json history",
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="reproduction of the SoftEng 751 teaching stack (IPDPSW 2014)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments").set_defaults(fn=_cmd_list)

    run = sub.add_parser("run", help="run one experiment (or 'all') and print its tables")
    run.add_argument("experiment")
    run.add_argument("-o", "--output", help="directory to also write reports into")
    run.set_defaults(fn=_cmd_run)

    trace = _experiment_command(
        sub, "trace", _cmd_trace,
        "run one experiment under tracing and write Chrome trace_event JSON",
        backend=True,
    )
    trace.add_argument(
        "-o", "--output", help="trace file path (default: trace_<experiment>.json)"
    )

    default_baseline = "benchmarks/reports/baselines.json"
    analyze = _experiment_command(
        sub, "analyze", _cmd_analyze,
        "run one experiment traced: work/span analytics + HTML report",
        max_events=True,
        backend=True,
    )
    analyze.add_argument(
        "-o", "--output", help="report directory (default: benchmarks/reports)"
    )
    analyze.add_argument(
        "--update-baseline", action="store_true", help="persist metrics as the new baseline"
    )
    analyze.add_argument(
        "--baseline", default=default_baseline, help=f"baseline store (default: {default_baseline})"
    )
    _record_flags(analyze)

    compare = _experiment_command(
        sub, "compare", _cmd_compare,
        "re-run one experiment and gate it against its stored baseline",
    )
    compare.add_argument(
        "--baseline", default=default_baseline, help=f"baseline store (default: {default_baseline})"
    )
    compare.add_argument(
        "--threshold", type=float, default=0.25, help="relative drift tolerated (default: 0.25)"
    )
    _record_flags(compare)

    chaos = _experiment_command(
        sub, "chaos", _cmd_chaos,
        "run one experiment under a seeded fault plan and summarise recovery",
        max_events=True,
        backend=True,
    )
    chaos.add_argument("--seed", type=int, default=0, help="fault-plan seed (default: 0)")
    chaos.add_argument(
        "--failure-rate", type=float, default=0.2,
        help="per-attempt call failure probability (default: 0.2)",
    )
    chaos.add_argument(
        "--task-failure-rate", type=float, default=0.0,
        help="executor task-body failure probability (default: 0, opt in)",
    )
    chaos.add_argument(
        "--latency-spike-rate", type=float, default=0.1,
        help="latency spike probability (default: 0.1)",
    )
    chaos.add_argument(
        "--expect",
        help="comma-separated lifecycle kinds (cancel,retry,fault,drain) that must "
        "appear in the trace; exit 1 otherwise",
    )
    _record_flags(chaos)

    flame = _experiment_command(
        sub, "flame", _cmd_flame,
        "run one experiment under the sampling profiler and write a flamegraph",
        max_events=True,
        backend=True,
    )
    flame.add_argument(
        "-o", "--output", help="report directory (default: benchmarks/reports)"
    )
    flame.add_argument(
        "--interval", type=float, default=0.002,
        help="seconds between stack samples (default: 0.002)",
    )
    flame.add_argument(
        "--repeat", type=int, default=1,
        help="run the experiment N times so short runs accumulate samples (default: 1)",
    )
    flame.add_argument(
        "--serve", action="store_true", help="serve /metrics + /healthz for the duration of the run"
    )
    flame.add_argument("--port", type=int, default=0, help="metrics port (default: ephemeral)")
    flame.add_argument(
        "--scrape-out", help="save one /metrics scrape (taken over HTTP) to this path"
    )

    top = _experiment_command(
        sub, "top", _cmd_top,
        "live dashboard: worker states, queue depth and throughput while one experiment runs",
        max_events=True,
        backend=True,
    )
    top.add_argument(
        "--interval", type=float, default=0.25,
        help="seconds between dashboard repaints (default: 0.25)",
    )
    top.add_argument(
        "--frames", type=int, default=None, help="stop after N frames (default: until the run ends)"
    )
    top.add_argument(
        "--repeat", type=int, default=1,
        help="run the experiment N times so short runs stay watchable (default: 1)",
    )
    top.add_argument(
        "--serve", action="store_true", help="also serve /metrics + /healthz while running"
    )
    top.add_argument("--port", type=int, default=0, help="metrics port (default: ephemeral)")

    serve_default_baseline = "benchmarks/reports/BENCH_serve.json"
    serve = sub.add_parser(
        "serve",
        help="replay a seeded arrival trace through the serving gateway "
        "(admission control, micro-batching, memoizing cache)",
    )
    serve.add_argument(
        "pattern", choices=("steady", "bursty", "diurnal", "overload"),
        help="traffic shape of the seeded arrival trace",
    )
    serve.add_argument(
        "--backend", default="sim",
        help="executor kind to serve on (default: sim — the deterministic golden run)",
    )
    serve.add_argument("--cores", type=int, default=4, help="worker/core count (default: 4)")
    serve.add_argument(
        "--requests", type=int, default=100_000,
        help="arrivals to generate (default: 100000)",
    )
    serve.add_argument("--seed", type=int, default=2014, help="trace seed (default: 2014)")
    serve.add_argument(
        "--rate", type=float, default=2_000.0,
        help="base offered rate in requests/s (default: 2000)",
    )
    serve.add_argument(
        "--time-scale", type=float, default=0.0,
        help="real backends: scale factor on inter-arrival sleeps "
        "(0 = replay as fast as possible; default: 0)",
    )
    serve.add_argument(
        "--update-baseline", action="store_true",
        help="persist this run's metrics as the serving baseline",
    )
    serve.add_argument(
        "--compare", action="store_true",
        help="gate this run against the stored serving baseline (exit 1 on regression)",
    )
    serve.add_argument(
        "--baseline", default=serve_default_baseline,
        help=f"serving baseline store (default: {serve_default_baseline})",
    )
    serve.add_argument(
        "--threshold", type=float, default=0.25,
        help="relative drift tolerated by --compare (default: 0.25)",
    )
    serve.add_argument(
        "--scrape-out",
        help="run traced with a live /metrics endpoint and save one scrape to this path",
    )
    serve.add_argument("--port", type=int, default=0, help="metrics port (default: ephemeral)")
    serve.add_argument("--max-events", type=int, default=None, help="cap recorded trace events")
    slo_group = serve.add_argument_group(
        "request tracing + SLOs",
        "per-request stage tracing (repro.obs.rtrace) and declarative objectives "
        "(repro.obs.slo); exit 3 when a declared SLO is violated",
    )
    slo_group.add_argument(
        "--slo", action="store_true",
        help="trace requests, print the latency decomposition and the SLO verdict",
    )
    slo_group.add_argument(
        "--objectives",
        help="comma-separated objectives like 'p99<=0.25,shed_rate<=0.05' "
        "(implies --slo; default: the built-in objective set)",
    )
    slo_group.add_argument(
        "--slo-window", type=float, default=1.0,
        help="burn-rate window width in (virtual) seconds (default: 1.0)",
    )
    slo_group.add_argument(
        "--waterfall",
        help="write the slowest-requests waterfall HTML to this path (implies tracing)",
    )
    _record_flags(serve)
    # --backend here names the executor to build, not the redirect
    # override — sim is a first-class (and the default) choice.
    serve.set_defaults(fn=_cmd_serve, direct_backend=True)

    slo = sub.add_parser(
        "slo",
        help="evaluate declared SLOs over one traced serve run (exit 3 on violation)",
    )
    slo.add_argument(
        "pattern", choices=("steady", "bursty", "diurnal", "overload"),
        help="traffic shape of the seeded arrival trace",
    )
    slo.add_argument(
        "--backend", default="sim",
        help="executor kind to serve on (default: sim — the deterministic golden run)",
    )
    slo.add_argument("--cores", type=int, default=4, help="worker/core count (default: 4)")
    slo.add_argument(
        "--requests", type=int, default=100_000,
        help="arrivals to generate (default: 100000)",
    )
    slo.add_argument("--seed", type=int, default=2014, help="trace seed (default: 2014)")
    slo.add_argument(
        "--rate", type=float, default=2_000.0,
        help="base offered rate in requests/s (default: 2000)",
    )
    slo.add_argument(
        "--time-scale", type=float, default=0.0,
        help="real backends: scale factor on inter-arrival sleeps (default: 0)",
    )
    slo.add_argument(
        "--objectives",
        help="comma-separated objectives like 'p99<=0.25' (default: built-in set)",
    )
    slo.add_argument(
        "--slo-window", type=float, default=1.0,
        help="burn-rate window width in (virtual) seconds (default: 1.0)",
    )
    slo.set_defaults(fn=_cmd_slo, direct_backend=True)

    runs = sub.add_parser(
        "runs",
        help="query the run-history store: cross-run trajectories, change-points, aggregates",
    )
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)

    runs_list = runs_sub.add_parser(
        "list", help="one row per experiment with stored history"
    )
    _store_flags(runs_list)
    runs_list.add_argument(
        "--scrape-out",
        help="export repro_store_* gauges through a live /metrics endpoint and "
        "save one scrape to this path",
    )
    runs_list.add_argument("--port", type=int, default=0, help="metrics port (default: ephemeral)")
    runs_list.set_defaults(fn=_cmd_runs_list, direct_backend=True)

    runs_query = runs_sub.add_parser(
        "query", help="filter stored run records, or reduce one metric over them"
    )
    runs_query.add_argument(
        "experiment", nargs="?", default=None, help="restrict to one experiment id"
    )
    _store_flags(runs_query)
    runs_query.add_argument(
        "--kind",
        choices=("analyze", "compare", "serve", "chaos", "bench", "snapshot"),
        help="restrict to one producing command",
    )
    runs_query.add_argument("--backend", help="restrict to one executor backend kind")
    runs_query.add_argument("--tag", help="restrict to records carrying this tag")
    runs_query.add_argument(
        "--verdict",
        help="restrict to records where some gate reached this verdict "
        "(e.g. regression, violation, pass)",
    )
    runs_query.add_argument(
        "--since", type=float, default=None, help="inclusive timestamp lower bound"
    )
    runs_query.add_argument(
        "--limit", type=int, default=None, help="keep only the newest N matches"
    )
    agg = runs_query.add_argument_group(
        "aggregation", "reduce one metric over the matching records instead of listing them"
    )
    agg.add_argument("--metric", help="metric name to reduce")
    agg.add_argument(
        "--reduce", default="mean", choices=("min", "max", "mean", "p50", "p99"),
        help="reducer to apply (default: mean)",
    )
    agg.add_argument(
        "--group-by", choices=("exp", "kind", "backend", "revision"),
        help="one aggregate row per group instead of one overall",
    )
    runs_query.set_defaults(fn=_cmd_runs_query, direct_backend=True)

    runs_timeline = runs_sub.add_parser(
        "timeline",
        help="per-metric trajectory of one experiment with direction-aware "
        "change-point detection (exit 1 when a metric regressed)",
    )
    runs_timeline.add_argument("experiment")
    _store_flags(runs_timeline)
    runs_timeline.add_argument(
        "-o", "--output", help="write the self-contained HTML timeline to this path"
    )
    runs_timeline.add_argument(
        "--metric", help="comma-separated metric names (default: every metric observed twice)"
    )
    runs_timeline.add_argument(
        "--threshold", type=float, default=0.25,
        help="relative bad-direction move that flags a change-point (default: 0.25)",
    )
    runs_timeline.add_argument(
        "--since", type=float, default=None, help="inclusive timestamp lower bound"
    )
    runs_timeline.add_argument(
        "--limit", type=int, default=None, help="keep only the newest N records"
    )
    runs_timeline.set_defaults(fn=_cmd_runs_timeline, direct_backend=True)

    runs_ingest = runs_sub.add_parser(
        "ingest", help="backfill the committed BENCH_*.json snapshots into the store"
    )
    runs_ingest.add_argument(
        "--store", default=None,
        help="run-history store directory (default: $REPRO_RUNS_STORE or benchmarks/runs)",
    )
    runs_ingest.add_argument(
        "--bench-dir", default="benchmarks/reports",
        help="directory of committed BENCH_*.json snapshots (default: benchmarks/reports)",
    )
    runs_ingest.set_defaults(fn=_cmd_runs_ingest, direct_backend=True)

    runs_compact = runs_sub.add_parser(
        "compact", help="rewrite shards time-ordered, dropping duplicate and foreign lines"
    )
    runs_compact.add_argument(
        "--store", default=None,
        help="run-history store directory (default: $REPRO_RUNS_STORE or benchmarks/runs)",
    )
    runs_compact.set_defaults(fn=_cmd_runs_compact, direct_backend=True)

    web = sub.add_parser("webdemo", help="generate the interactive race-condition pages")
    web.add_argument("out_dir")
    web.set_defaults(fn=_cmd_webdemo)

    sub.add_parser("topics", help="print the ten project topics").set_defaults(fn=_cmd_topics)

    args = parser.parse_args(argv)
    if getattr(args, "direct_backend", False):
        # serve interprets --backend itself (any registered kind,
        # including the virtual-time ones the override rejects)
        return args.fn(args)
    if getattr(args, "backend", None) is not None:
        # Probe the override once so bad --backend values (unknown kind,
        # or a non-redirectable one like sim) exit 2 with the registry's
        # self-documenting message instead of a traceback mid-run.
        from repro.executor import backend_override

        try:
            with backend_override(kind=args.backend):
                pass
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
    with _backend_scope(args):
        return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
