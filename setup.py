"""Legacy setup shim: enables `pip install -e .` on toolchains without the
`wheel` package (this container has no network to fetch it)."""

from setuptools import setup

setup()
